package oplog

import (
	"testing"
	"testing/quick"
	"time"

	"decongestant/internal/storage"
)

func TestOpTimeCompare(t *testing.T) {
	cases := []struct {
		a, b OpTime
		want int
	}{
		{OpTime{1, 1}, OpTime{1, 1}, 0},
		{OpTime{1, 1}, OpTime{1, 2}, -1},
		{OpTime{1, 2}, OpTime{1, 1}, 1},
		{OpTime{1, 9}, OpTime{2, 1}, -1},
		{OpTime{2, 1}, OpTime{1, 9}, 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v)=%d want %d", c.a, c.b, got, c.want)
		}
	}
	if !Zero.IsZero() || (OpTime{0, 1}).IsZero() {
		t.Fatal("IsZero wrong")
	}
}

func TestLagSeconds(t *testing.T) {
	if got := (OpTime{10, 5}).LagSeconds(OpTime{7, 9}); got != 3 {
		t.Fatalf("lag=%d want 3", got)
	}
	if got := (OpTime{7, 1}).LagSeconds(OpTime{10, 0}); got != 0 {
		t.Fatalf("negative lag not clamped: %d", got)
	}
}

func TestNextTSMonotonic(t *testing.T) {
	l := NewLog()
	prev := Zero
	// Simulate time moving forward and occasionally repeating a second.
	times := []time.Duration{0, 100 * time.Millisecond, 900 * time.Millisecond,
		time.Second, time.Second, 2 * time.Second, 2 * time.Second}
	for _, now := range times {
		ts := l.NextTS(now)
		if !prev.Before(ts) {
			t.Fatalf("NextTS not monotonic: %v then %v", prev, ts)
		}
		if err := l.Append(NewNoop(ts)); err != nil {
			t.Fatal(err)
		}
		prev = ts
	}
	if l.Len() != len(times) {
		t.Fatalf("Len=%d", l.Len())
	}
}

func TestAppendRejectsOutOfOrder(t *testing.T) {
	l := NewLog()
	if err := l.Append(NewNoop(OpTime{5, 1})); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(NewNoop(OpTime{5, 1})); err == nil {
		t.Fatal("duplicate TS accepted")
	}
	if err := l.Append(NewNoop(OpTime{4, 9})); err == nil {
		t.Fatal("earlier TS accepted")
	}
}

func TestScanAfter(t *testing.T) {
	l := NewLog()
	for i := 1; i <= 10; i++ {
		if err := l.Append(NewNoop(OpTime{int64(i), 1})); err != nil {
			t.Fatal(err)
		}
	}
	got := l.ScanAfter(OpTime{3, 1}, 0)
	if len(got) != 7 || got[0].TS.Secs != 4 {
		t.Fatalf("ScanAfter: %d entries starting %v", len(got), got[0].TS)
	}
	got = l.ScanAfter(OpTime{3, 0}, 0) // strictly-after semantics
	if len(got) != 8 || got[0].TS.Secs != 3 {
		t.Fatalf("ScanAfter(3,0): %d entries", len(got))
	}
	got = l.ScanAfter(Zero, 4)
	if len(got) != 4 {
		t.Fatalf("max ignored: %d", len(got))
	}
	if got := l.ScanAfter(OpTime{10, 1}, 0); got != nil {
		t.Fatalf("scan past end: %v", got)
	}
}

func TestTruncateBefore(t *testing.T) {
	l := NewLog()
	for i := 1; i <= 10; i++ {
		l.Append(NewNoop(OpTime{int64(i), 1}))
	}
	if n := l.TruncateBefore(OpTime{5, 0}); n != 4 {
		t.Fatalf("dropped %d, want 4", n)
	}
	if l.Len() != 6 {
		t.Fatalf("Len=%d", l.Len())
	}
	if got := l.ScanAfter(Zero, 1); got[0].TS.Secs != 5 {
		t.Fatalf("first entry %v", got[0].TS)
	}
	if l.Last() != (OpTime{10, 1}) {
		t.Fatalf("Last=%v", l.Last())
	}
}

func TestApplyInsertSetDelete(t *testing.T) {
	s := storage.NewStore()
	ins := NewInsert(OpTime{1, 1}, "c", storage.D{"_id": "k", "v": 1})
	if err := ins.Apply(s); err != nil {
		t.Fatal(err)
	}
	set := NewSet(OpTime{1, 2}, "c", "k", storage.D{"v": 2, "w": 3})
	if err := set.Apply(s); err != nil {
		t.Fatal(err)
	}
	d, _ := s.C("c").FindByID("k")
	if d.Int("v") != 2 || d.Int("w") != 3 {
		t.Fatalf("after set: %v", d)
	}
	del := NewDelete(OpTime{1, 3}, "c", "k")
	if err := del.Apply(s); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.C("c").FindByID("k"); ok {
		t.Fatal("doc survived delete")
	}
	if err := NewNoop(OpTime{1, 4}).Apply(s); err != nil {
		t.Fatal(err)
	}
}

// Applying a suffix of the log twice must be a no-op — the property
// MongoDB's oplog application relies on after restarts.
func TestApplyIdempotent(t *testing.T) {
	entries := []Entry{
		NewInsert(OpTime{1, 1}, "c", storage.D{"_id": "a", "v": 1}),
		NewSet(OpTime{1, 2}, "c", "a", storage.D{"v": 5}),
		NewInsert(OpTime{1, 3}, "c", storage.D{"_id": "b", "v": 2}),
		NewDelete(OpTime{1, 4}, "c", "b"),
		NewSet(OpTime{1, 5}, "c", "newdoc", storage.D{"x": 9}),
	}
	once := storage.NewStore()
	for _, e := range entries {
		if err := e.Apply(once); err != nil {
			t.Fatal(err)
		}
	}
	twice := storage.NewStore()
	for _, e := range entries {
		if err := e.Apply(twice); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range entries[2:] { // re-apply a suffix
		if err := e.Apply(twice); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []string{"a", "b", "newdoc"} {
		d1, ok1 := once.C("c").FindByID(id)
		d2, ok2 := twice.C("c").FindByID(id)
		if ok1 != ok2 || (ok1 && !storage.Equal(d1, d2)) {
			t.Fatalf("divergence on %q: %v/%v vs %v/%v", id, d1, ok1, d2, ok2)
		}
	}
}

func TestApplyCorruptPayload(t *testing.T) {
	s := storage.NewStore()
	bad := Entry{TS: OpTime{1, 1}, Kind: KindInsert, Collection: "c", Payload: []byte{0xFF, 0x00}}
	if err := bad.Apply(s); err == nil {
		t.Fatal("corrupt payload applied without error")
	}
}

// Property: replaying any log prefix on a fresh store, then the rest,
// equals replaying the whole log.
func TestQuickPrefixReplayEquivalence(t *testing.T) {
	f := func(vals []uint8, split uint8) bool {
		l := NewLog()
		var entries []Entry
		for i, v := range vals {
			ts := OpTime{int64(i + 1), 1}
			var e Entry
			switch v % 3 {
			case 0:
				e = NewInsert(ts, "c", storage.D{"_id": "k" + string(rune('a'+v%7)), "v": int64(v)})
			case 1:
				e = NewSet(ts, "c", "k"+string(rune('a'+v%7)), storage.D{"v": int64(v) * 2})
			case 2:
				e = NewDelete(ts, "c", "k"+string(rune('a'+v%7)))
			}
			if err := l.Append(e); err != nil {
				return false
			}
			entries = append(entries, e)
		}
		whole := storage.NewStore()
		for _, e := range entries {
			if err := e.Apply(whole); err != nil {
				return false
			}
		}
		k := int(split)
		if len(entries) > 0 {
			k = k % (len(entries) + 1)
		} else {
			k = 0
		}
		parts := storage.NewStore()
		for _, e := range entries[:k] {
			if err := e.Apply(parts); err != nil {
				return false
			}
		}
		for _, e := range l.ScanAfter(prefixLastTS(entries, k), 0) {
			if err := e.Apply(parts); err != nil {
				return false
			}
		}
		ok := true
		whole.C("c").ScanIDs(func(id string) bool {
			d1, _ := whole.C("c").FindByID(id)
			d2, found := parts.C("c").FindByID(id)
			if !found || !storage.Equal(d1, d2) {
				ok = false
				return false
			}
			return true
		})
		return ok && whole.C("c").Len() == parts.C("c").Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func prefixLastTS(entries []Entry, k int) OpTime {
	if k == 0 {
		return Zero
	}
	return entries[k-1].TS
}

func TestTruncateToLast(t *testing.T) {
	l := NewLog()
	for i := 1; i <= 10; i++ {
		l.Append(NewNoop(OpTime{int64(i), 1}))
	}
	if n := l.TruncateToLast(4); n != 6 {
		t.Fatalf("dropped %d, want 6", n)
	}
	if l.Len() != 4 {
		t.Fatalf("Len=%d", l.Len())
	}
	if got := l.ScanAfter(Zero, 1); got[0].TS.Secs != 7 {
		t.Fatalf("first entry %v, want secs=7", got[0].TS)
	}
	if n := l.TruncateToLast(100); n != 0 {
		t.Fatalf("over-large keep dropped %d", n)
	}
	if l.Last() != (OpTime{10, 1}) {
		t.Fatalf("Last=%v", l.Last())
	}
}
