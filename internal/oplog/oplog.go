// Package oplog implements the operation log that drives primary-copy
// replication: OpTimes with MongoDB-style (seconds, increment)
// structure, idempotent log entries, and an append-only log with
// scan-from-timestamp reads used by secondary pullers.
package oplog

import (
	"fmt"
	"sort"
	"time"

	"decongestant/internal/storage"
)

// OpTime identifies a position in the oplog: wall-clock seconds plus a
// within-second increment, like MongoDB's Timestamp. The one-second
// granularity of the Secs component is what gives serverStatus-based
// staleness estimates their one-second resolution (§4.5 of the paper).
type OpTime struct {
	Secs int64
	Inc  uint32
}

// Zero is the OpTime before any operation.
var Zero = OpTime{}

// IsZero reports whether t is the zero OpTime.
func (t OpTime) IsZero() bool { return t == Zero }

// Compare orders OpTimes: -1, 0, or 1.
func (t OpTime) Compare(o OpTime) int {
	switch {
	case t.Secs != o.Secs:
		if t.Secs < o.Secs {
			return -1
		}
		return 1
	case t.Inc != o.Inc:
		if t.Inc < o.Inc {
			return -1
		}
		return 1
	default:
		return 0
	}
}

// Before reports whether t precedes o.
func (t OpTime) Before(o OpTime) bool { return t.Compare(o) < 0 }

// LagSeconds returns the whole-second distance from t back to earlier;
// this is exactly what a serverStatus staleness computation sees.
func (t OpTime) LagSeconds(earlier OpTime) int64 {
	d := t.Secs - earlier.Secs
	if d < 0 {
		return 0
	}
	return d
}

func (t OpTime) String() string { return fmt.Sprintf("%d.%d", t.Secs, t.Inc) }

// FromDuration builds the OpTime for an event at virtual time d with
// the given within-second increment.
func FromDuration(d time.Duration, inc uint32) OpTime {
	return OpTime{Secs: int64(d / time.Second), Inc: inc}
}

// Kind is the type of a logged operation.
type Kind int

const (
	// KindInsert carries the full document.
	KindInsert Kind = iota
	// KindSet carries the fields to merge (post-image values), which
	// makes re-application idempotent.
	KindSet
	// KindDelete removes the document.
	KindDelete
	// KindNoop advances the log without touching data (heartbeat
	// writes, used to keep staleness measurable on idle systems).
	KindNoop
)

func (k Kind) String() string {
	switch k {
	case KindInsert:
		return "insert"
	case KindSet:
		return "set"
	case KindDelete:
		return "delete"
	case KindNoop:
		return "noop"
	}
	return "unknown"
}

// Entry is one replicated operation. The payload is a BSON-lite
// encoded document so replication ships bytes, never shared pointers.
type Entry struct {
	TS         OpTime
	Kind       Kind
	Collection string
	DocID      string
	Payload    []byte
}

// NewInsert builds an insert entry for doc. The document is normalized
// (convenience numeric widths become int64/float64) before encoding.
func NewInsert(ts OpTime, collection string, doc storage.Document) Entry {
	norm, err := doc.Normalized()
	if err != nil {
		panic(err) // unencodable value: programming error at the write site
	}
	return Entry{TS: ts, Kind: KindInsert, Collection: collection,
		DocID: norm.ID(), Payload: storage.EncodeDoc(norm)}
}

// NewSet builds a field-merge entry with post-image field values,
// normalized before encoding.
func NewSet(ts OpTime, collection, docID string, fields storage.Document) Entry {
	norm, err := fields.Normalized()
	if err != nil {
		panic(err)
	}
	return Entry{TS: ts, Kind: KindSet, Collection: collection,
		DocID: docID, Payload: storage.EncodeDoc(norm)}
}

// NewDelete builds a delete entry.
func NewDelete(ts OpTime, collection, docID string) Entry {
	return Entry{TS: ts, Kind: KindDelete, Collection: collection, DocID: docID}
}

// NewNoop builds a no-op entry.
func NewNoop(ts OpTime) Entry { return Entry{TS: ts, Kind: KindNoop} }

// Apply executes the entry against a store, idempotently: applying an
// entry twice leaves the same state as applying it once.
func (e Entry) Apply(s *storage.Store) error {
	switch e.Kind {
	case KindInsert:
		doc, err := storage.DecodeDoc(e.Payload)
		if err != nil {
			return fmt.Errorf("oplog: decode insert %s: %w", e.TS, err)
		}
		return s.C(e.Collection).Upsert(doc)
	case KindSet:
		fields, err := storage.DecodeDoc(e.Payload)
		if err != nil {
			return fmt.Errorf("oplog: decode set %s: %w", e.TS, err)
		}
		_, err = s.C(e.Collection).ApplySet(e.DocID, fields)
		return err
	case KindDelete:
		s.C(e.Collection).Delete(e.DocID)
		return nil
	case KindNoop:
		return nil
	default:
		return fmt.Errorf("oplog: unknown entry kind %d", e.Kind)
	}
}

// DecodedEntry is an Entry whose payload has been decoded once, so a
// fetched batch can be parsed outside any lock and then applied — to
// one store or to several chunks in parallel — without re-decoding
// bytes per application.
type DecodedEntry struct {
	Entry
	// Doc is the decoded payload: the full document for an insert, the
	// post-image fields for a set, nil for delete/noop.
	Doc storage.Document
}

// Decode parses e's payload once.
func (e Entry) Decode() (DecodedEntry, error) {
	d := DecodedEntry{Entry: e}
	switch e.Kind {
	case KindInsert, KindSet:
		doc, err := storage.DecodeDoc(e.Payload)
		if err != nil {
			return d, fmt.Errorf("oplog: decode %s %s: %w", e.Kind, e.TS, err)
		}
		d.Doc = doc
	}
	return d, nil
}

// DecodeBatch decodes every entry of a fetched batch, dropping
// undecodable ones. It returns the decoded batch, how many entries
// were dropped, and the first decode error (nil if none).
func DecodeBatch(entries []Entry) ([]DecodedEntry, int, error) {
	out := make([]DecodedEntry, 0, len(entries))
	dropped := 0
	var first error
	for _, e := range entries {
		d, err := e.Decode()
		if err != nil {
			dropped++
			if first == nil {
				first = err
			}
			continue
		}
		out = append(out, d)
	}
	return out, dropped, first
}

// Apply executes the decoded entry against a store, idempotently. The
// decoded document is handed over as an owned value: committed
// documents are immutable under the copy-on-write storage layer, so
// sharing the pointer (even across several stores during catch-up or
// resync) is safe and skips the normalize-and-clone work the byte
// decode path pays on every application.
func (e DecodedEntry) Apply(s *storage.Store) error {
	switch e.Kind {
	case KindInsert:
		return s.C(e.Collection).UpsertOwned(e.Doc)
	case KindSet:
		_, err := s.C(e.Collection).ApplySetOwned(e.DocID, e.Doc)
		return err
	case KindDelete:
		s.C(e.Collection).Delete(e.DocID)
		return nil
	case KindNoop:
		return nil
	default:
		return fmt.Errorf("oplog: unknown entry kind %d", e.Kind)
	}
}

// ApplyDecodedBatch applies an ordered run of decoded entries to a
// store, grouping consecutive same-collection mutations so each group
// takes its collection's write lock once (the batch apply entry
// point). Individual failures are skipped, not fatal: it returns how
// many entries applied, how many failed, and the first error.
func ApplyDecodedBatch(s *storage.Store, batch []DecodedEntry) (applied, failed int, firstErr error) {
	note := func(err error) {
		failed++
		if firstErr == nil {
			firstErr = err
		}
	}
	var run []storage.ApplyOp
	var runColl string
	flush := func() {
		if len(run) == 0 {
			return
		}
		ok, err := s.C(runColl).ApplyBatch(run)
		applied += ok
		failed += len(run) - ok
		if err != nil && firstErr == nil {
			firstErr = err
		}
		run = run[:0]
	}
	for _, e := range batch {
		var op storage.ApplyOp
		switch e.Kind {
		case KindNoop:
			applied++ // advances the log without touching data
			continue
		case KindInsert:
			op = storage.ApplyOp{Kind: storage.ApplyUpsert, ID: e.DocID, Doc: e.Doc}
		case KindSet:
			op = storage.ApplyOp{Kind: storage.ApplyMerge, ID: e.DocID, Doc: e.Doc}
		case KindDelete:
			op = storage.ApplyOp{Kind: storage.ApplyDelete, ID: e.DocID}
		default:
			note(fmt.Errorf("oplog: unknown entry kind %d", e.Kind))
			continue
		}
		if e.Collection != runColl {
			flush()
			runColl = e.Collection
		}
		run = append(run, op)
	}
	flush()
	return applied, failed, firstErr
}

// Log is an append-only sequence of entries ordered by OpTime, stored
// in a ring buffer. Appends are amortized O(1); truncation releases
// only the dropped slots (O(dropped)) instead of copying the retained
// suffix (O(len)) as a flat slice would — the difference between a
// capped oplog whose steady-state maintenance is free and one that
// re-copies ~cap entries on every cut. The Log carries no lock of its
// own; callers (the cluster node) synchronize access.
type Log struct {
	buf   []Entry // ring storage; empty slots are zeroed so payloads free
	head  int     // index of the oldest entry in buf
	count int     // live entries

	lastTS  OpTime
	nextInc uint32
	lastSec int64

	// truncatedTo is the TS of the newest entry ever discarded (by
	// truncation or reset). A fetcher whose position is before this has
	// fallen off the log and must resync rather than fetch.
	truncatedTo OpTime

	// onAppend, if set, runs once after every Append/AppendBatch — the
	// tail-notification hook pullers use to wake on new entries instead
	// of sleep-polling. It runs under whatever lock guards the Log, so
	// it must not block.
	onAppend func()
}

// NewLog creates an empty log.
func NewLog() *Log { return &Log{} }

// OnAppend installs the tail-notification hook (nil disables it).
func (l *Log) OnAppend(fn func()) { l.onAppend = fn }

func (l *Log) notify() {
	if l.onAppend != nil {
		l.onAppend()
	}
}

// slot maps the logical index i (0 = oldest) to a ring position.
func (l *Log) slot(i int) int { return (l.head + i) % len(l.buf) }

// at returns the i-th oldest entry.
func (l *Log) at(i int) Entry { return l.buf[l.slot(i)] }

// ensure grows the ring so it can hold n more entries, unwrapping the
// ring into the front of the new buffer.
func (l *Log) ensure(n int) {
	need := l.count + n
	if need <= len(l.buf) {
		return
	}
	newCap := len(l.buf) * 2
	if newCap < 16 {
		newCap = 16
	}
	for newCap < need {
		newCap *= 2
	}
	buf := make([]Entry, newCap)
	if l.count > 0 {
		tail := copy(buf, l.buf[l.head:])
		if tail < l.count {
			copy(buf[tail:], l.buf[:l.count-tail])
		}
	}
	l.buf = buf
	l.head = 0
}

// dropFirst discards the n oldest entries, zeroing their slots so the
// payloads are collectable, and records the newest dropped TS.
func (l *Log) dropFirst(n int) int {
	if n <= 0 {
		return 0
	}
	if n > l.count {
		n = l.count
	}
	l.truncatedTo = l.at(n - 1).TS
	for i := 0; i < n; i++ {
		l.buf[l.slot(i)] = Entry{}
	}
	l.head = l.slot(n)
	l.count -= n
	if l.count == 0 {
		l.head = 0
	}
	return n
}

// NextTS mints the OpTime for an operation occurring at virtual time
// now, monotonically increasing.
func (l *Log) NextTS(now time.Duration) OpTime {
	secs := int64(now / time.Second)
	if secs < l.lastSec {
		secs = l.lastSec
	}
	if secs != l.lastSec {
		l.lastSec = secs
		l.nextInc = 0
	}
	l.nextInc++
	ts := OpTime{Secs: secs, Inc: l.nextInc}
	if !l.lastTS.Before(ts) {
		ts = OpTime{Secs: l.lastTS.Secs, Inc: l.lastTS.Inc + 1}
		l.lastSec = ts.Secs
		l.nextInc = ts.Inc
	}
	return ts
}

// Append adds an entry; its TS must exceed the last appended TS.
func (l *Log) Append(e Entry) error {
	if !l.lastTS.Before(e.TS) {
		return fmt.Errorf("oplog: append out of order: %s after %s", e.TS, l.lastTS)
	}
	l.ensure(1)
	l.buf[l.slot(l.count)] = e
	l.count++
	l.lastTS = e.TS
	l.notify()
	return nil
}

// AppendBatch adds entries (each TS exceeding the previous) with one
// capacity check and one tail notification for the whole batch — the
// group-commit append. On an ordering error nothing is appended.
func (l *Log) AppendBatch(entries []Entry) error {
	last := l.lastTS
	for _, e := range entries {
		if !last.Before(e.TS) {
			return fmt.Errorf("oplog: batch append out of order: %s after %s", e.TS, last)
		}
		last = e.TS
	}
	if len(entries) == 0 {
		return nil
	}
	l.ensure(len(entries))
	for _, e := range entries {
		l.buf[l.slot(l.count)] = e
		l.count++
	}
	l.lastTS = last
	l.notify()
	return nil
}

// Last returns the OpTime of the newest entry (Zero if empty).
func (l *Log) Last() OpTime { return l.lastTS }

// First returns the OpTime of the oldest retained entry (Zero if empty).
func (l *Log) First() OpTime {
	if l.count == 0 {
		return Zero
	}
	return l.at(0).TS
}

// TruncatedTo returns the TS of the newest entry ever discarded (Zero
// if the log has never dropped anything). A fetch position before this
// value has a gap: entries it has not seen are gone.
func (l *Log) TruncatedTo() OpTime { return l.truncatedTo }

// Len returns the number of entries retained.
func (l *Log) Len() int { return l.count }

// search returns the smallest logical index whose entry satisfies
// pred, or count if none does (entries are TS-ordered).
func (l *Log) search(pred func(OpTime) bool) int {
	return sort.Search(l.count, func(i int) bool {
		return pred(l.at(i).TS)
	})
}

// ScanAfter returns up to max entries with TS strictly after `after`.
func (l *Log) ScanAfter(after OpTime, max int) []Entry {
	i := l.search(after.Before)
	if i >= l.count {
		return nil
	}
	end := l.count
	if max > 0 && i+max < end {
		end = i + max
	}
	out := make([]Entry, end-i)
	start := l.slot(i)
	tail := copy(out, l.buf[start:min(start+(end-i), len(l.buf))])
	if tail < len(out) {
		copy(out[tail:], l.buf[:len(out)-tail])
	}
	return out
}

// TruncateBefore discards entries with TS before the cutoff, bounding
// memory like MongoDB's capped oplog collection. It returns how many
// entries were dropped.
func (l *Log) TruncateBefore(cutoff OpTime) int {
	return l.dropFirst(l.search(func(ts OpTime) bool { return !ts.Before(cutoff) }))
}

// TruncateToLast keeps only the newest n entries, returning how many
// were dropped — the secondary-side oplog cap (secondaries have no
// fetchers to protect, but must bound memory like any capped
// collection).
func (l *Log) TruncateToLast(n int) int {
	if n < 0 || l.count <= n {
		return 0
	}
	return l.dropFirst(l.count - n)
}

// ResetTo discards every entry and restarts the log at ts, as after an
// initial sync: the node's data now reflects a snapshot at ts, earlier
// history is gone (TruncatedTo reports ts), and the next append must
// follow ts.
func (l *Log) ResetTo(ts OpTime) {
	for i := 0; i < l.count; i++ {
		l.buf[l.slot(i)] = Entry{}
	}
	l.head, l.count = 0, 0
	l.lastTS = ts
	l.lastSec = ts.Secs
	l.nextInc = ts.Inc
	l.truncatedTo = ts
}
