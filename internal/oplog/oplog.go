// Package oplog implements the operation log that drives primary-copy
// replication: OpTimes with MongoDB-style (seconds, increment)
// structure, idempotent log entries, and an append-only log with
// scan-from-timestamp reads used by secondary pullers.
package oplog

import (
	"fmt"
	"sort"
	"time"

	"decongestant/internal/storage"
)

// OpTime identifies a position in the oplog: wall-clock seconds plus a
// within-second increment, like MongoDB's Timestamp. The one-second
// granularity of the Secs component is what gives serverStatus-based
// staleness estimates their one-second resolution (§4.5 of the paper).
type OpTime struct {
	Secs int64
	Inc  uint32
}

// Zero is the OpTime before any operation.
var Zero = OpTime{}

// IsZero reports whether t is the zero OpTime.
func (t OpTime) IsZero() bool { return t == Zero }

// Compare orders OpTimes: -1, 0, or 1.
func (t OpTime) Compare(o OpTime) int {
	switch {
	case t.Secs != o.Secs:
		if t.Secs < o.Secs {
			return -1
		}
		return 1
	case t.Inc != o.Inc:
		if t.Inc < o.Inc {
			return -1
		}
		return 1
	default:
		return 0
	}
}

// Before reports whether t precedes o.
func (t OpTime) Before(o OpTime) bool { return t.Compare(o) < 0 }

// LagSeconds returns the whole-second distance from t back to earlier;
// this is exactly what a serverStatus staleness computation sees.
func (t OpTime) LagSeconds(earlier OpTime) int64 {
	d := t.Secs - earlier.Secs
	if d < 0 {
		return 0
	}
	return d
}

func (t OpTime) String() string { return fmt.Sprintf("%d.%d", t.Secs, t.Inc) }

// FromDuration builds the OpTime for an event at virtual time d with
// the given within-second increment.
func FromDuration(d time.Duration, inc uint32) OpTime {
	return OpTime{Secs: int64(d / time.Second), Inc: inc}
}

// Kind is the type of a logged operation.
type Kind int

const (
	// KindInsert carries the full document.
	KindInsert Kind = iota
	// KindSet carries the fields to merge (post-image values), which
	// makes re-application idempotent.
	KindSet
	// KindDelete removes the document.
	KindDelete
	// KindNoop advances the log without touching data (heartbeat
	// writes, used to keep staleness measurable on idle systems).
	KindNoop
)

func (k Kind) String() string {
	switch k {
	case KindInsert:
		return "insert"
	case KindSet:
		return "set"
	case KindDelete:
		return "delete"
	case KindNoop:
		return "noop"
	}
	return "unknown"
}

// Entry is one replicated operation. The payload is a BSON-lite
// encoded document so replication ships bytes, never shared pointers.
type Entry struct {
	TS         OpTime
	Kind       Kind
	Collection string
	DocID      string
	Payload    []byte
}

// NewInsert builds an insert entry for doc. The document is normalized
// (convenience numeric widths become int64/float64) before encoding.
func NewInsert(ts OpTime, collection string, doc storage.Document) Entry {
	norm, err := doc.Normalized()
	if err != nil {
		panic(err) // unencodable value: programming error at the write site
	}
	return Entry{TS: ts, Kind: KindInsert, Collection: collection,
		DocID: norm.ID(), Payload: storage.EncodeDoc(norm)}
}

// NewSet builds a field-merge entry with post-image field values,
// normalized before encoding.
func NewSet(ts OpTime, collection, docID string, fields storage.Document) Entry {
	norm, err := fields.Normalized()
	if err != nil {
		panic(err)
	}
	return Entry{TS: ts, Kind: KindSet, Collection: collection,
		DocID: docID, Payload: storage.EncodeDoc(norm)}
}

// NewDelete builds a delete entry.
func NewDelete(ts OpTime, collection, docID string) Entry {
	return Entry{TS: ts, Kind: KindDelete, Collection: collection, DocID: docID}
}

// NewNoop builds a no-op entry.
func NewNoop(ts OpTime) Entry { return Entry{TS: ts, Kind: KindNoop} }

// Apply executes the entry against a store, idempotently: applying an
// entry twice leaves the same state as applying it once.
func (e Entry) Apply(s *storage.Store) error {
	switch e.Kind {
	case KindInsert:
		doc, err := storage.DecodeDoc(e.Payload)
		if err != nil {
			return fmt.Errorf("oplog: decode insert %s: %w", e.TS, err)
		}
		return s.C(e.Collection).Upsert(doc)
	case KindSet:
		fields, err := storage.DecodeDoc(e.Payload)
		if err != nil {
			return fmt.Errorf("oplog: decode set %s: %w", e.TS, err)
		}
		_, err = s.C(e.Collection).ApplySet(e.DocID, fields)
		return err
	case KindDelete:
		s.C(e.Collection).Delete(e.DocID)
		return nil
	case KindNoop:
		return nil
	default:
		return fmt.Errorf("oplog: unknown entry kind %d", e.Kind)
	}
}

// Log is an append-only sequence of entries ordered by OpTime.
type Log struct {
	entries []Entry
	lastTS  OpTime
	nextInc uint32
	lastSec int64
}

// NewLog creates an empty log.
func NewLog() *Log { return &Log{} }

// NextTS mints the OpTime for an operation occurring at virtual time
// now, monotonically increasing.
func (l *Log) NextTS(now time.Duration) OpTime {
	secs := int64(now / time.Second)
	if secs < l.lastSec {
		secs = l.lastSec
	}
	if secs != l.lastSec {
		l.lastSec = secs
		l.nextInc = 0
	}
	l.nextInc++
	ts := OpTime{Secs: secs, Inc: l.nextInc}
	if !l.lastTS.Before(ts) {
		ts = OpTime{Secs: l.lastTS.Secs, Inc: l.lastTS.Inc + 1}
		l.lastSec = ts.Secs
		l.nextInc = ts.Inc
	}
	return ts
}

// Append adds an entry; its TS must exceed the last appended TS.
func (l *Log) Append(e Entry) error {
	if !l.lastTS.Before(e.TS) {
		return fmt.Errorf("oplog: append out of order: %s after %s", e.TS, l.lastTS)
	}
	l.entries = append(l.entries, e)
	l.lastTS = e.TS
	return nil
}

// Last returns the OpTime of the newest entry (Zero if empty).
func (l *Log) Last() OpTime { return l.lastTS }

// Len returns the number of entries retained.
func (l *Log) Len() int { return len(l.entries) }

// ScanAfter returns up to max entries with TS strictly after `after`.
func (l *Log) ScanAfter(after OpTime, max int) []Entry {
	i := sort.Search(len(l.entries), func(i int) bool {
		return after.Before(l.entries[i].TS)
	})
	if i >= len(l.entries) {
		return nil
	}
	end := len(l.entries)
	if max > 0 && i+max < end {
		end = i + max
	}
	out := make([]Entry, end-i)
	copy(out, l.entries[i:end])
	return out
}

// TruncateBefore discards entries with TS before the cutoff, bounding
// memory like MongoDB's capped oplog collection. It returns how many
// entries were dropped.
func (l *Log) TruncateBefore(cutoff OpTime) int {
	i := sort.Search(len(l.entries), func(i int) bool {
		return !l.entries[i].TS.Before(cutoff)
	})
	if i == 0 {
		return 0
	}
	dropped := i
	l.entries = append([]Entry(nil), l.entries[i:]...)
	return dropped
}

// TruncateToLast keeps only the newest n entries, returning how many
// were dropped — the secondary-side oplog cap (secondaries have no
// fetchers to protect, but must bound memory like any capped
// collection).
func (l *Log) TruncateToLast(n int) int {
	if n < 0 || len(l.entries) <= n {
		return 0
	}
	dropped := len(l.entries) - n
	l.entries = append([]Entry(nil), l.entries[dropped:]...)
	return dropped
}
