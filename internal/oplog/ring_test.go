package oplog

// Tests for the ring-buffer Log representation introduced with the
// write-path pipeline: wraparound correctness against a flat-slice
// reference model, gap tracking for fetchers that fall off the log,
// batch append, tail notification and the decode-once apply path.

import (
	"math/rand"
	"testing"

	"decongestant/internal/storage"
)

// TestRingAgainstReferenceModel drives the ring through randomized
// append/scan/truncate traffic and cross-checks every observable
// against a plain-slice model. This is what proves the modular-index
// arithmetic right across many wraparounds.
func TestRingAgainstReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	l := NewLog()
	var ref []Entry
	var next int64
	for step := 0; step < 5000; step++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // append
			next++
			e := NewNoop(OpTime{next, 1})
			if err := l.Append(e); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			ref = append(ref, e)
		case 5: // batch append
			batch := make([]Entry, rng.Intn(7))
			for i := range batch {
				next++
				batch[i] = NewNoop(OpTime{next, 1})
			}
			if err := l.AppendBatch(batch); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			ref = append(ref, batch...)
		case 6: // truncate to last n
			n := rng.Intn(20)
			want := 0
			if len(ref) > n {
				want = len(ref) - n
			}
			if got := l.TruncateToLast(n); got != want {
				t.Fatalf("step %d: TruncateToLast dropped %d, want %d", step, got, want)
			}
			ref = ref[len(ref)-min(n, len(ref)):]
		case 7: // truncate before a random retained cutoff
			if len(ref) == 0 {
				continue
			}
			cut := ref[rng.Intn(len(ref))].TS
			i := 0
			for i < len(ref) && ref[i].TS.Before(cut) {
				i++
			}
			if got := l.TruncateBefore(cut); got != i {
				t.Fatalf("step %d: TruncateBefore dropped %d, want %d", step, got, i)
			}
			ref = ref[i:]
		case 8: // scan from a random position
			var after OpTime
			if len(ref) > 0 && rng.Intn(2) == 0 {
				after = ref[rng.Intn(len(ref))].TS
			}
			max := rng.Intn(10)
			got := l.ScanAfter(after, max)
			var want []Entry
			for _, e := range ref {
				if after.Before(e.TS) {
					want = append(want, e)
					if max > 0 && len(want) == max {
						break
					}
				}
			}
			if len(got) != len(want) {
				t.Fatalf("step %d: scan len %d, want %d", step, len(got), len(want))
			}
			for i := range got {
				if got[i].TS != want[i].TS {
					t.Fatalf("step %d: scan[%d]=%v, want %v", step, i, got[i].TS, want[i].TS)
				}
			}
		case 9: // invariants
			if l.Len() != len(ref) {
				t.Fatalf("step %d: Len=%d, want %d", step, l.Len(), len(ref))
			}
			if len(ref) > 0 {
				if l.First() != ref[0].TS {
					t.Fatalf("step %d: First=%v, want %v", step, l.First(), ref[0].TS)
				}
				if l.Last() != ref[len(ref)-1].TS {
					t.Fatalf("step %d: Last=%v, want %v", step, l.Last(), ref[len(ref)-1].TS)
				}
			}
		}
	}
}

func TestTruncatedToTracksNewestDrop(t *testing.T) {
	l := NewLog()
	if !l.TruncatedTo().IsZero() {
		t.Fatal("fresh log reports truncation")
	}
	for i := 1; i <= 10; i++ {
		l.Append(NewNoop(OpTime{int64(i), 1}))
	}
	l.TruncateBefore(OpTime{4, 0})
	if got := l.TruncatedTo(); got != (OpTime{3, 1}) {
		t.Fatalf("TruncatedTo=%v, want 3.1", got)
	}
	// A fetcher at 2.1 has a gap; one exactly at 3.1 does not.
	if !(OpTime{2, 1}).Before(l.TruncatedTo()) {
		t.Fatal("gapped fetch position not detected")
	}
	if (OpTime{3, 1}).Before(l.TruncatedTo()) {
		t.Fatal("fetcher at the truncation point wrongly gapped")
	}
	l.TruncateToLast(2)
	if got := l.TruncatedTo(); got != (OpTime{8, 1}) {
		t.Fatalf("TruncatedTo after second cut=%v, want 8.1", got)
	}
}

func TestAppendBatchRejectsOutOfOrderAtomically(t *testing.T) {
	l := NewLog()
	l.Append(NewNoop(OpTime{5, 1}))
	bad := []Entry{NewNoop(OpTime{6, 1}), NewNoop(OpTime{6, 1})}
	if err := l.AppendBatch(bad); err == nil {
		t.Fatal("out-of-order batch accepted")
	}
	if l.Len() != 1 || l.Last() != (OpTime{5, 1}) {
		t.Fatalf("failed batch mutated the log: len=%d last=%v", l.Len(), l.Last())
	}
	if err := l.AppendBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

func TestOnAppendFiresOncePerBatch(t *testing.T) {
	l := NewLog()
	fired := 0
	l.OnAppend(func() { fired++ })
	l.Append(NewNoop(OpTime{1, 1}))
	if fired != 1 {
		t.Fatalf("fired=%d after Append, want 1", fired)
	}
	l.AppendBatch([]Entry{NewNoop(OpTime{2, 1}), NewNoop(OpTime{2, 2}), NewNoop(OpTime{2, 3})})
	if fired != 2 {
		t.Fatalf("fired=%d after AppendBatch, want 2", fired)
	}
	l.AppendBatch(nil) // nothing appended, nothing signaled
	if fired != 2 {
		t.Fatalf("fired=%d after empty batch, want 2", fired)
	}
}

func TestResetToRestartsLog(t *testing.T) {
	l := NewLog()
	for i := 1; i <= 5; i++ {
		l.Append(NewNoop(OpTime{int64(i), 1}))
	}
	syncPoint := OpTime{40, 7}
	l.ResetTo(syncPoint)
	if l.Len() != 0 || l.Last() != syncPoint || l.TruncatedTo() != syncPoint {
		t.Fatalf("after reset: len=%d last=%v truncatedTo=%v", l.Len(), l.Last(), l.TruncatedTo())
	}
	if err := l.Append(NewNoop(OpTime{40, 6})); err == nil {
		t.Fatal("append before the sync point accepted")
	}
	if err := l.Append(NewNoop(OpTime{40, 8})); err != nil {
		t.Fatal(err)
	}
	if got := l.ScanAfter(syncPoint, 0); len(got) != 1 {
		t.Fatalf("scan after reset: %d entries, want 1", len(got))
	}
}

// TestDecodedApplyMatchesByteApply replays the same entry sequence
// through the per-entry byte-decoding path and the decode-once batch
// path and requires identical stores.
func TestDecodedApplyMatchesByteApply(t *testing.T) {
	entries := []Entry{
		NewInsert(OpTime{1, 1}, "c", storage.D{"_id": "a", "v": int64(1), "nested": storage.D{"x": int64(9)}}),
		NewSet(OpTime{1, 2}, "c", "a", storage.D{"v": int64(5)}),
		NewInsert(OpTime{1, 3}, "d", storage.D{"_id": "b", "v": int64(2)}),
		NewNoop(OpTime{1, 4}),
		NewSet(OpTime{1, 5}, "c", "ghost", storage.D{"x": int64(9)}),
		NewDelete(OpTime{1, 6}, "d", "b"),
		NewInsert(OpTime{1, 7}, "c", storage.D{"_id": "z", "v": int64(3)}),
	}
	byBytes := storage.NewStore()
	for _, e := range entries {
		if err := e.Apply(byBytes); err != nil {
			t.Fatal(err)
		}
	}
	decoded, dropped, err := DecodeBatch(entries)
	if err != nil || dropped != 0 {
		t.Fatalf("DecodeBatch: dropped=%d err=%v", dropped, err)
	}
	byBatch := storage.NewStore()
	applied, failed, err := ApplyDecodedBatch(byBatch, decoded)
	if err != nil || failed != 0 || applied != len(entries) {
		t.Fatalf("ApplyDecodedBatch: applied=%d failed=%d err=%v", applied, failed, err)
	}
	for _, coll := range []string{"c", "d"} {
		byBytes.C(coll).ScanIDs(func(id string) bool {
			d1, _ := byBytes.C(coll).FindByID(id)
			d2, ok := byBatch.C(coll).FindByID(id)
			if !ok || !storage.Equal(d1, d2) {
				t.Fatalf("divergence at %s/%s: %v vs %v (ok=%v)", coll, id, d1, d2, ok)
			}
			return true
		})
		if byBytes.C(coll).Len() != byBatch.C(coll).Len() {
			t.Fatalf("length divergence in %s", coll)
		}
	}
}

func TestDecodeBatchDropsCorruptEntries(t *testing.T) {
	entries := []Entry{
		NewInsert(OpTime{1, 1}, "c", storage.D{"_id": "a", "v": int64(1)}),
		{TS: OpTime{1, 2}, Kind: KindSet, Collection: "c", DocID: "a", Payload: []byte{0xFF, 0x01}},
		NewNoop(OpTime{1, 3}),
	}
	decoded, dropped, err := DecodeBatch(entries)
	if dropped != 1 || err == nil {
		t.Fatalf("dropped=%d err=%v, want 1 drop with error", dropped, err)
	}
	if len(decoded) != 2 {
		t.Fatalf("decoded %d entries, want 2", len(decoded))
	}
}
