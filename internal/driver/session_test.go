package driver

import (
	"testing"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

func causalSetup(seed int64, poll time.Duration) (*sim.VirtualEnv, *cluster.ReplicaSet, *Client) {
	env := sim.NewEnv(seed)
	cfg := cluster.DefaultConfig()
	cfg.ReplIdlePoll = poll
	cfg.DisableTailWake = true // these tests drive staleness via the poll interval
	cfg.HeartbeatInterval = 100 * time.Millisecond
	cfg.CheckpointInterval = time.Hour
	cfg.NoopInterval = time.Hour
	rs := cluster.New(env, cfg)
	c := NewClient(env, WrapClusterCausal(rs))
	return env, rs, c
}

func TestSessionReadYourWritesOnSecondary(t *testing.T) {
	// Slow replication poll: a plain secondary read right after a
	// write misses it, a causal session read must wait and see it.
	env, rs, c := causalSetup(1, 300*time.Millisecond)
	defer env.Shutdown()
	sess := c.NewSession()
	if !sess.Causal() {
		t.Fatal("session not causal over causal conn")
	}
	secID := rs.SecondaryIDs()[0]
	var plainMiss, sessionHit bool
	var waited time.Duration
	env.Spawn("client", func(p sim.Proc) {
		if _, _, err := sess.Write(p, func(tx cluster.WriteTxn) (any, error) {
			return nil, tx.Insert("kv", storage.D{"_id": "mine", "v": 1})
		}); err != nil {
			t.Error(err)
			return
		}
		if sess.OperationTime().IsZero() {
			t.Error("session token not advanced by write")
		}
		// Plain read at the secondary: stale.
		res, _ := c.Conn().ExecRead(p, secID, func(v cluster.ReadView) (any, error) {
			_, ok := v.FindByID("kv", "mine")
			return ok, nil
		})
		plainMiss = !res.(bool)
		// Session read at the same secondary: waits for replication.
		start := p.Now()
		res2, _, _, err := sess.Read(p, ReadOptions{Pref: Secondary}, func(v cluster.ReadView) (any, error) {
			_, ok := v.FindByID("kv", "mine")
			return ok, nil
		})
		if err != nil {
			t.Error(err)
			return
		}
		waited = p.Now() - start
		sessionHit = res2.(bool)
	})
	env.Run(5 * time.Second)
	if !plainMiss {
		t.Error("plain secondary read unexpectedly saw the write (staleness window too small)")
	}
	if !sessionHit {
		t.Error("causal session read did not observe the session's own write")
	}
	if waited < 100*time.Millisecond {
		t.Errorf("session read waited only %v; expected it to block for replication", waited)
	}
}

func TestSessionMonotonicTokenAcrossReads(t *testing.T) {
	env, rs, c := causalSetup(2, 5*time.Millisecond)
	defer env.Shutdown()
	sess := c.NewSession()
	env.Spawn("client", func(p sim.Proc) {
		var prev = sess.OperationTime()
		for i := 0; i < 10; i++ {
			sess.Write(p, func(tx cluster.WriteTxn) (any, error) {
				return nil, tx.Set("kv", "k", storage.D{"v": i})
			})
			sess.Read(p, ReadOptions{Pref: Secondary}, func(v cluster.ReadView) (any, error) {
				return nil, nil
			})
			cur := sess.OperationTime()
			if cur.Before(prev) {
				t.Errorf("token moved backward: %v after %v", cur, prev)
			}
			prev = cur
		}
	})
	env.Run(30 * time.Second)
	_ = rs
}

// nonCausalConn wraps a Conn and hides any causal capability — like a
// connection (e.g. an older wire peer) that does not support
// afterClusterTime.
type nonCausalConn struct{ Conn }

func TestSessionDegradesWithoutCausalConn(t *testing.T) {
	env, rs, _ := testSetup(3)
	defer env.Shutdown()
	c := NewClient(env, nonCausalConn{WrapCluster(rs)})
	sess := c.NewSession()
	if sess.Causal() {
		t.Fatal("session claims causality over a non-causal conn")
	}
	env.Spawn("client", func(p sim.Proc) {
		if _, _, err := sess.Write(p, func(tx cluster.WriteTxn) (any, error) {
			return nil, tx.Insert("kv", storage.D{"_id": "x", "v": 1})
		}); err != nil {
			t.Error(err)
		}
		if _, _, _, err := sess.Read(p, ReadOptions{Pref: Primary}, func(v cluster.ReadView) (any, error) {
			return nil, nil
		}); err != nil {
			t.Error(err)
		}
	})
	env.Run(time.Second)
	if !sess.OperationTime().IsZero() {
		t.Error("degraded session advanced a token")
	}
}

func TestPlainWrapClusterIsCausal(t *testing.T) {
	// In-process connections always support causality via method
	// promotion; WrapClusterCausal just makes it explicit at the type
	// level.
	env, _, c := testSetup(4)
	defer env.Shutdown()
	if !c.NewSession().Causal() {
		t.Fatal("in-process conn should support causal sessions")
	}
}
