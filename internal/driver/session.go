package driver

import (
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/obs/trace"
	"decongestant/internal/oplog"
	"decongestant/internal/sim"
)

// CausalConn is the optional connection capability backing causally
// consistent sessions: reads that wait for a prerequisite OpTime and
// writes that report their commit OpTime. The in-process replica set
// implements it; connections without it degrade sessions to plain
// reads (documented on Session).
type CausalConn interface {
	Conn
	ExecReadAfter(p sim.Proc, nodeID int, after oplog.OpTime, fn func(v cluster.ReadView) (any, error)) (any, oplog.OpTime, error)
	ExecWriteTracked(p sim.Proc, fn func(tx cluster.WriteTxn) (any, error)) (any, oplog.OpTime, error)
}

// Statically assert the in-process replica set provides causality.
var _ CausalConn = (*causalClusterConn)(nil)

type causalClusterConn struct{ clusterConn }

// WrapClusterCausal adapts an in-process replica set to CausalConn.
func WrapClusterCausal(rs *cluster.ReplicaSet) CausalConn {
	return causalClusterConn{clusterConn{rs}}
}

// Session provides MongoDB-style causally consistent session
// guarantees on top of a Client: every read observes at least the
// effects of the session's previous writes (read-your-writes) and of
// previously read states (monotonic reads), even when routed to a
// secondary — the read simply waits until that secondary has applied
// the session's operationTime, exactly as afterClusterTime does.
//
// The paper's Decongestant treats reads individually and points to
// this MongoDB capability for applications that need session
// guarantees (§1); Session is that capability layered over the same
// router-compatible connection.
type Session struct {
	client *Client
	causal CausalConn // nil when the connection lacks the capability

	opTime oplog.OpTime
}

// NewSession starts a session. If the client's connection implements
// CausalConn the session enforces causal consistency; otherwise reads
// behave like plain Client reads.
func (c *Client) NewSession() *Session {
	s := &Session{client: c}
	if cc, ok := c.conn.(CausalConn); ok {
		s.causal = cc
	}
	return s
}

// Causal reports whether the session actually enforces causal
// consistency.
func (s *Session) Causal() bool { return s.causal != nil }

// OperationTime returns the session's causal token.
func (s *Session) OperationTime() oplog.OpTime { return s.opTime }

// advance moves the token forward.
func (s *Session) advance(ts oplog.OpTime) {
	if s.opTime.Before(ts) {
		s.opTime = ts
	}
}

// Read routes a read with the given options; under a causal connection
// it waits at the target node for the session's operationTime before
// executing, and advances the token to the node's applied time. The
// session originates the trace sampling decision like Client.Read, and
// the context rides alongside the causal token when the connection is
// also a TracedConn.
func (s *Session) Read(p sim.Proc, opts ReadOptions, fn func(v cluster.ReadView) (any, error)) (any, int, time.Duration, error) {
	if s.causal == nil {
		return s.client.Read(p, opts, fn)
	}
	// The freshness-priced cache path enforces read-your-writes itself:
	// entries older than the session token miss, and hits advance the
	// token to the entry's fill OpTime.
	if res, nodeID, lat, handled, err := s.client.readCached(p, opts, s.client.tracer.StartTrace(), s, fn); handled {
		return res, nodeID, lat, err
	}
	nodeID, err := s.client.SelectServer(opts)
	if err != nil {
		return nil, -1, 0, err
	}
	tctx := s.client.tracer.StartTrace()
	tc, traced := s.causal.(TracedConn)
	start := p.Now()
	var res any
	var ts oplog.OpTime
	if traced && (tctx.Live() || opts.AuditBoundSecs != 0) {
		var spanID uint64
		if tctx.Live() {
			spanID = s.client.tracer.NewSpanID()
		}
		meta := cluster.ReadMeta{
			Ctx:       trace.Context{TraceID: tctx.TraceID, SpanID: spanID},
			BoundSecs: opts.AuditBoundSecs,
		}
		res, ts, err = tc.ExecReadMeta(p, nodeID, s.opTime, meta, fn)
		if tctx.Live() {
			s.client.tracer.Record(trace.Span{
				Trace: tctx.TraceID,
				ID:    spanID,
				Name:  "session.read",
				Node:  -1,
				Start: start,
				Dur:   p.Now() - start,
				Attrs: []trace.Attr{
					{K: "pref", V: opts.Pref.String()},
					{K: "after", V: s.opTime.String()},
				},
			})
		}
	} else {
		res, ts, err = s.causal.ExecReadAfter(p, nodeID, s.opTime, fn)
	}
	if err == nil {
		s.advance(ts)
	}
	return res, nodeID, p.Now() - start, err
}

// ReadLinearizable routes a linearizable read across lease-holding
// members, threading the session's operationTime as the causal
// prerequisite — read-your-writes composes with linearizability, so a
// leased secondary first waits for the session's token, then serves
// under its lease. The token advances to the serving node's applied
// time. Returns the routing reason alongside the usual results.
func (s *Session) ReadLinearizable(p sim.Proc, opts ReadOptions, fn func(v cluster.ReadView) (any, error)) (any, int, time.Duration, string, error) {
	res, node, ts, lat, reason, err := s.client.readLinearizable(p, opts, s.client.tracer.StartTrace(), s.opTime, fn)
	if err == nil {
		s.advance(ts)
	}
	return res, node, lat, reason, err
}

// Write runs a write transaction and advances the session token to its
// commit time, so subsequent session reads (anywhere) observe it.
func (s *Session) Write(p sim.Proc, fn func(tx cluster.WriteTxn) (any, error)) (any, time.Duration, error) {
	if s.causal == nil {
		return s.client.Write(p, fn)
	}
	start := p.Now()
	if s.client.cache != nil {
		rec := &invalidatingTxn{}
		res, ts, err := s.causal.ExecWriteTracked(p, func(tx cluster.WriteTxn) (any, error) {
			rec.WriteTxn = tx
			return fn(rec)
		})
		if err == nil {
			s.client.invalidateKeys(rec.keys)
			s.advance(ts)
		}
		return res, p.Now() - start, err
	}
	res, ts, err := s.causal.ExecWriteTracked(p, fn)
	if err == nil {
		s.advance(ts)
	}
	return res, p.Now() - start, err
}
