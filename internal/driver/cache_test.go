package driver

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"decongestant/internal/cache"
	"decongestant/internal/cluster"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

// cacheSetup is testSetup plus an enabled freshness-priced cache.
func cacheSetup(t *testing.T, seed int64, cfg cache.Config) (*sim.VirtualEnv, *cluster.ReplicaSet, *Client, *cache.Cache) {
	t.Helper()
	env, rs, c := testSetup(seed)
	rc := c.EnableCache(env, cfg)
	if rc == nil {
		t.Fatal("EnableCache returned nil for an in-process cluster conn")
	}
	return env, rs, c, rc
}

func boundedFind(c *Client, p sim.Proc, id string, bound int64) (storage.Document, error) {
	res, _, _, err := c.Read(p, ReadOptions{Pref: Secondary, AuditBoundSecs: bound},
		func(v cluster.ReadView) (any, error) {
			d, _ := v.FindByID("kv", id)
			return d, nil
		})
	if res == nil {
		return nil, err
	}
	return res.(storage.Document), err
}

// TestCacheFillHitInvalidate: the basic lifecycle. A bounded read
// fills, a repeat within the freshness window is served locally, a
// client write to the key drops the entry (write-through), and
// unbounded reads never touch the cache.
func TestCacheFillHitInvalidate(t *testing.T) {
	env, _, c, rc := cacheSetup(t, 21, cache.Config{})
	defer env.Shutdown()

	done := false
	env.Spawn("client", func(p sim.Proc) {
		if _, _, err := c.Write(p, func(tx cluster.WriteTxn) (any, error) {
			return nil, tx.Set("kv", "a", storage.D{"v": int64(1)})
		}); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(50 * time.Millisecond) // let the secondaries apply
		read := func(want int64) {
			d, err := boundedFind(c, p, "a", 5)
			if err != nil || d == nil || d.Int("v") != want {
				t.Errorf("bounded read: %v %v, want v=%d", d, err, want)
			}
		}
		read(1)
		read(1)
		if s := rc.Snapshot(); s.Hits != 1 || s.Misses != 1 {
			t.Errorf("after fill+hit: %+v", s)
		}
		if _, _, err := c.Write(p, func(tx cluster.WriteTxn) (any, error) {
			return nil, tx.Set("kv", "a", storage.D{"v": int64(2)})
		}); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(50 * time.Millisecond)
		read(2) // refilled with the new value
		if s := rc.Snapshot(); s.Invalidations != 1 || s.Misses != 2 {
			t.Errorf("after write-through: %+v", s)
		}
		// No bound declared: the cache is bypassed entirely.
		if _, _, _, err := c.Read(p, ReadOptions{Pref: Primary}, func(v cluster.ReadView) (any, error) {
			v.FindByID("kv", "a")
			return nil, nil
		}); err != nil {
			t.Error(err)
		}
		// Linearizable preference: bypassed even with a bound set.
		if _, _, _, err := c.Read(p, ReadOptions{Pref: Linearizable, AuditBoundSecs: 5},
			func(v cluster.ReadView) (any, error) {
				v.FindByID("kv", "a")
				return nil, nil
			}); err != nil {
			t.Error(err)
		}
		if s := rc.Snapshot(); s.Hits != 1 || s.Misses != 2 {
			t.Errorf("bypass reads touched the cache: %+v", s)
		}
		done = true
	})
	env.Run(5 * time.Second)
	if !done {
		t.Fatal("client did not finish")
	}
}

// TestCacheExpiresByFreshnessPrice: an entry filled fresh is valid only
// while fill staleness + elapsed + guard band fits the bound — pure
// passage of time expires it with no writes anywhere.
func TestCacheExpiresByFreshnessPrice(t *testing.T) {
	env, _, c, rc := cacheSetup(t, 22, cache.Config{GuardBandSecs: 1})
	defer env.Shutdown()

	done := false
	env.Spawn("client", func(p sim.Proc) {
		if _, _, err := c.Write(p, func(tx cluster.WriteTxn) (any, error) {
			return nil, tx.Set("kv", "a", storage.D{"v": int64(1)})
		}); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(50 * time.Millisecond)
		if _, err := boundedFind(c, p, "a", 3); err != nil {
			t.Error(err)
			return
		}
		// Within the window (elapsed 1s: 0 + ceil(1) + 1 <= 3): a hit.
		p.Sleep(time.Second)
		if _, err := boundedFind(c, p, "a", 3); err != nil {
			t.Error(err)
			return
		}
		if s := rc.Snapshot(); s.Hits != 1 {
			t.Errorf("in-window read missed: %+v", s)
		}
		// Beyond it (elapsed 3s: 0 + 3 + 1 > 3): expired, refetch.
		p.Sleep(3 * time.Second)
		if _, err := boundedFind(c, p, "a", 3); err != nil {
			t.Error(err)
			return
		}
		s := rc.Snapshot()
		if s.Expired != 1 || s.Misses != 2 {
			t.Errorf("aged entry not expired: %+v", s)
		}
		done = true
	})
	env.Run(10 * time.Second)
	if !done {
		t.Fatal("client did not finish")
	}
}

// TestCacheSessionTokenBypass: a causal session whose token is newer
// than an entry's fill OpTime must not be served that entry —
// read-your-writes survives the cache. A hit advances the token to the
// fill OpTime, preserving monotonic reads for later session ops.
func TestCacheSessionTokenBypass(t *testing.T) {
	env := sim.NewEnv(23)
	defer env.Shutdown()
	cfg := cluster.DefaultConfig()
	cfg.ReplIdlePoll = 5 * time.Millisecond
	cfg.CheckpointInterval = time.Hour
	cfg.NoopInterval = time.Hour
	rs := cluster.New(env, cfg)
	c := NewClient(env, WrapClusterCausal(rs))
	rc := c.EnableCache(env, cache.Config{})
	if rc == nil {
		t.Fatal("causal conn lost the FreshConn capability")
	}

	done := false
	env.Spawn("client", func(p sim.Proc) {
		sess := c.NewSession()
		if !sess.Causal() {
			t.Error("session is not causal")
			return
		}
		if _, _, err := sess.Write(p, func(tx cluster.WriteTxn) (any, error) {
			return nil, tx.Set("kv", "a", storage.D{"v": int64(1)})
		}); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(50 * time.Millisecond)
		read := func(want int64) {
			res, _, _, err := sess.Read(p, ReadOptions{Pref: Secondary, AuditBoundSecs: 5},
				func(v cluster.ReadView) (any, error) {
					d, _ := v.FindByID("kv", "a")
					return d, nil
				})
			if err != nil || res == nil || res.(storage.Document).Int("v") != want {
				t.Errorf("session read: %v %v, want v=%d", res, err, want)
			}
		}
		read(1) // fill (token ≤ fill OpTime after the replica applied)
		read(1) // hit
		if s := rc.Snapshot(); s.Hits != 1 || s.Misses != 1 {
			t.Errorf("session fill+hit: %+v", s)
		}
		// The session writes again: its token now exceeds the cached
		// entry's fill OpTime, so the (invalidated and refilled-from-
		// elsewhere) entry may not serve until a fill catches up.
		if _, _, err := sess.Write(p, func(tx cluster.WriteTxn) (any, error) {
			return nil, tx.Set("kv", "a", storage.D{"v": int64(2)})
		}); err != nil {
			t.Error(err)
			return
		}
		// Read immediately: even if a stale fill raced back in, the
		// session token forbids serving anything older than the write.
		read(2)
		if s := rc.Snapshot(); s.Hits != 1 {
			t.Errorf("stale entry served to a causal session: %+v", s)
		}
		done = true
	})
	env.Run(5 * time.Second)
	if !done {
		t.Fatal("client did not finish")
	}
}

// TestCacheSingleflightCollapse: concurrent misses of one key collapse
// into a single upstream fill.
func TestCacheSingleflightCollapse(t *testing.T) {
	env, _, c, rc := cacheSetup(t, 24, cache.Config{})
	defer env.Shutdown()

	env.Spawn("seed", func(p sim.Proc) {
		if _, _, err := c.Write(p, func(tx cluster.WriteTxn) (any, error) {
			return nil, tx.Set("kv", "hot", storage.D{"v": int64(7)})
		}); err != nil {
			t.Error(err)
		}
	})
	env.Run(100 * time.Millisecond)
	var served atomic.Int64
	for i := 0; i < 8; i++ {
		env.Spawn(fmt.Sprintf("reader-%d", i), func(p sim.Proc) {
			if d, err := boundedFind(c, p, "hot", 10); err == nil && d != nil {
				served.Add(1)
			}
		})
	}
	env.Run(time.Second)
	if served.Load() != 8 {
		t.Fatalf("served %d of 8 readers", served.Load())
	}
	s := rc.Snapshot()
	if s.FillsCollapsed == 0 {
		t.Errorf("no collapsed fills across 8 concurrent readers: %+v", s)
	}
	if s.Misses+s.Hits < 8 {
		t.Errorf("readers unaccounted for: %+v", s)
	}
}

// TestCacheChurnRace is the PR 10 churn test: cache enabled, real
// goroutines (run under -race), writers mutating the hot key space,
// Zipf readers spending the bound through the cache, replication lag
// sawtoothing from slow oplog pulls, and one failover mid-run. The
// invariants: the freshness auditor records zero bound violations —
// cache hits are priced, node reads carry the bound — and therefore
// pins zero exemplar traces; and the cache actually served (hits > 0).
func TestCacheChurnRace(t *testing.T) {
	env := sim.NewRealtimeEnv(25)
	defer env.Shutdown()
	cfg := cluster.DefaultConfig()
	// Sawtooth: secondaries refresh only every 1.5 s, so with steady
	// writers their staleness climbs to ~1.5–2 s between pulls — well
	// inside the 4 s bound for node reads, while cache validity is the
	// binding constraint for hits.
	cfg.ReplIdlePoll = 1500 * time.Millisecond
	cfg.DisableTailWake = true
	cfg.CheckpointInterval = time.Hour
	cfg.NoopInterval = time.Hour
	rs := cluster.New(env, cfg)
	rs.Tracer().SetSampling(1) // violations would pin exemplars
	c := NewClient(env, WrapCluster(rs))
	rc := c.EnableCache(env, cache.Config{})
	if rc == nil {
		t.Fatal("EnableCache returned nil")
	}

	const bound = 4
	const hotKeys = 16
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := env.Adhoc(fmt.Sprintf("churn/writer-%d", w))
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("h%03d", rng.Intn(hotKeys))
				// Failover windows reject writes; just keep going.
				c.Write(p, func(tx cluster.WriteTxn) (any, error) {
					return nil, tx.Set("kv", key, storage.D{"v": int64(i)})
				})
				time.Sleep(20 * time.Millisecond)
			}
		}(w)
	}

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			p := env.Adhoc(fmt.Sprintf("churn/reader-%d", r))
			rng := rand.New(rand.NewSource(int64(200 + r)))
			zipf := rand.NewZipf(rng, 1.2, 1, hotKeys-1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("h%03d", zipf.Uint64())
				// SecondaryPreferred: survives the failover window by
				// falling back to the primary.
				c.Read(p, ReadOptions{Pref: SecondaryPreferred, AuditBoundSecs: bound},
					func(v cluster.ReadView) (any, error) {
						v.FindByID("kv", key)
						return nil, nil
					})
				time.Sleep(5 * time.Millisecond)
			}
		}(r)
	}

	time.Sleep(1200 * time.Millisecond)
	rs.Failover(env.Adhoc("churn/failover"))
	time.Sleep(1200 * time.Millisecond)
	close(stop)
	wg.Wait()

	snap := rs.Metrics().Snapshot()
	if v := snap.CounterValue("freshness.bound_violations"); v != 0 {
		t.Errorf("%d freshness bound violations under churn with the cache on", v)
	}
	if pinned := rs.Tracer().Pinned(); len(pinned) != 0 {
		t.Errorf("%d exemplar traces pinned; want none", len(pinned))
	}
	s := rc.Snapshot()
	if s.Hits == 0 {
		t.Errorf("cache never served under churn: %+v", s)
	}
	t.Logf("churn: %+v, failover survived, violations 0", s)
}
