package driver

import (
	"errors"
	"strconv"
	"sync"
	"time"

	"decongestant/internal/cache"
	"decongestant/internal/cluster"
	"decongestant/internal/obs/trace"
	"decongestant/internal/oplog"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

// FreshConn is the optional connection capability behind the
// freshness-priced cache: a read that also reports the staleness the
// serving node observed at serve time (0 when the primary served).
// The cache stamps fills with that value — an entry filled s seconds
// stale at time t provably satisfies bound Δ until t + (Δ − s).
type FreshConn interface {
	Conn
	ExecReadFreshMeta(p sim.Proc, nodeID int, after oplog.OpTime, meta cluster.ReadMeta, fn func(v cluster.ReadView) (any, error)) (any, oplog.OpTime, int64, error)
}

// CacheAuditor is the optional connection capability that files reads
// served without touching any node — cache hits — into the server-side
// freshness auditor, so every hit still lands in the observed-staleness
// histograms and can fire freshness.bound_violations.
type CacheAuditor interface {
	AuditServed(boundSecs, observedSecs int64, traceID uint64) bool
}

// The in-process replica set provides both capabilities.
var (
	_ FreshConn    = (*clusterConn)(nil)
	_ CacheAuditor = (*clusterConn)(nil)
)

// EnableCache attaches a freshness-priced read cache to the client.
// Bounded reads (AuditBoundSecs > 0, any non-linearizable preference)
// consult it before selecting a server; hits are priced against the
// bound and audited, misses fill through the connection's FreshConn
// capability. Returns the cache (nil when the connection cannot report
// observed staleness — then the client reads exactly as before).
func (c *Client) EnableCache(env sim.Env, cfg cache.Config) *cache.Cache {
	fc, ok := c.conn.(FreshConn)
	if !ok {
		return nil
	}
	c.cache = cache.New(env, cfg, c.reg)
	c.fresh = fc
	c.cacheAudit, _ = c.conn.(CacheAuditor)
	return c.cache
}

// Cache returns the attached cache (nil when disabled).
func (c *Client) Cache() *cache.Cache { return c.cache }

// ReadFresh routes one read like Read but additionally returns the
// serving node's applied OpTime and observed staleness — the stamp an
// external freshness-priced cache (the mongos router-side cache) needs
// to price its fills. fresh=false means the connection lacks the
// FreshConn capability: the read still executed, but the staleness is
// unknown and the results must not be cached under a freshness bound.
func (c *Client) ReadFresh(p sim.Proc, opts ReadOptions, fn func(v cluster.ReadView) (any, error)) (res any, ts oplog.OpTime, observedSecs int64, nodeID int, lat time.Duration, fresh bool, err error) {
	fc, ok := c.conn.(FreshConn)
	if !ok {
		res, nodeID, lat, err = c.Read(p, opts, fn)
		return res, oplog.Zero, 0, nodeID, lat, false, err
	}
	nodeID, err = c.SelectServer(opts)
	if err != nil {
		return nil, oplog.Zero, 0, -1, 0, true, err
	}
	meta := cluster.ReadMeta{BoundSecs: opts.AuditBoundSecs}
	start := p.Now()
	res, ts, observedSecs, err = fc.ExecReadFreshMeta(p, nodeID, oplog.Zero, meta, fn)
	if errors.Is(err, cluster.ErrNodeDown) {
		switch opts.Pref {
		case PrimaryPreferred:
			fallback := opts
			fallback.Pref = Secondary
			if id2, err2 := c.SelectServer(fallback); err2 == nil {
				c.obsFallbacks.Inc(1)
				res, ts, observedSecs, err = fc.ExecReadFreshMeta(p, id2, oplog.Zero, meta, fn)
				nodeID = id2
			}
		case SecondaryPreferred:
			c.obsFallbacks.Inc(1)
			nodeID = c.conn.PrimaryID()
			res, ts, observedSecs, err = fc.ExecReadFreshMeta(p, nodeID, oplog.Zero, meta, fn)
		}
	}
	return res, ts, observedSecs, nodeID, p.Now() - start, true, err
}

// cacheView is the phase-1 optimistic read view: it answers point
// lookups from the cache alone and flags the first miss. It is pooled
// so the all-hit path allocates nothing.
type cacheView struct {
	cache   *cache.Cache
	now     time.Duration
	bound   int64
	after   oplog.OpTime
	miss    bool
	missKey cache.Key
	worst   int64        // worst effective staleness over the hits
	maxFill oplog.OpTime // newest fill OpTime over the hits
}

var cacheViewPool = sync.Pool{New: func() any { return new(cacheView) }}

func (v *cacheView) FindByID(collection, id string) (storage.Document, bool) {
	if v.miss {
		return nil, false
	}
	doc, hit, ok := v.cache.Get(v.now, cache.Key{Collection: collection, ID: id}, v.bound, v.after, 0)
	if !ok {
		v.miss = true
		v.missKey = cache.Key{Collection: collection, ID: id}
		return nil, false
	}
	if hit.EffSecs > v.worst {
		v.worst = hit.EffSecs
	}
	if v.maxFill.Before(hit.FillOpTime) {
		v.maxFill = hit.FillOpTime
	}
	return doc, true
}

func (v *cacheView) FindManyByID(collection string, ids []string) []storage.Document {
	if v.miss {
		return nil
	}
	out := make([]storage.Document, 0, len(ids))
	for _, id := range ids {
		doc, ok := v.FindByID(collection, id)
		if v.miss {
			return nil
		}
		if ok {
			out = append(out, doc)
		}
	}
	return out
}

// Filtered queries and counts are not cached: they always fall through
// to the network phase.
func (v *cacheView) Find(collection string, f storage.Filter, limit int) []storage.Document {
	v.miss = true
	return nil
}

func (v *cacheView) Count(collection string, f storage.Filter) int {
	v.miss = true
	return 0
}

func (v *cacheView) AddUnits(u int) {}

// fillRecorder is the phase-2 view: it forwards to the real (node or
// remote) view and records every point-read result so the caller can
// fill the cache after the read returns with its observed staleness.
type fillRecorder struct {
	inner cluster.ReadView
	cols  []string
	docs  []storage.Document
}

func (r *fillRecorder) FindByID(collection, id string) (storage.Document, bool) {
	doc, ok := r.inner.FindByID(collection, id)
	if ok {
		r.cols = append(r.cols, collection)
		r.docs = append(r.docs, doc)
	}
	return doc, ok
}

func (r *fillRecorder) FindManyByID(collection string, ids []string) []storage.Document {
	docs := r.inner.FindManyByID(collection, ids)
	for _, d := range docs {
		if d != nil {
			r.cols = append(r.cols, collection)
			r.docs = append(r.docs, d)
		}
	}
	return docs
}

func (r *fillRecorder) Find(collection string, f storage.Filter, limit int) []storage.Document {
	return r.inner.Find(collection, f, limit)
}

func (r *fillRecorder) Count(collection string, f storage.Filter) int {
	return r.inner.Count(collection, f)
}

func (r *fillRecorder) AddUnits(u int) { r.inner.AddUnits(u) }

// tryCacheHit runs fn against the cache-only view. On an all-hit read
// it audits once with the worst effective staleness, advances the
// session token to the newest fill OpTime, and returns the result with
// served=true. fn must be a pure function of the view: a missing read
// is re-run against the cluster, discarding this attempt's result.
func (c *Client) tryCacheHit(p sim.Proc, bound int64, after oplog.OpTime, traceID uint64, sess *Session, fn func(v cluster.ReadView) (any, error)) (any, cache.Key, bool, error) {
	v := cacheViewPool.Get().(*cacheView)
	v.cache, v.now, v.bound, v.after = c.cache, p.Now(), bound, after
	v.miss, v.worst = false, 0
	v.missKey = cache.Key{}
	v.maxFill = oplog.OpTime{}
	res, err := fn(v)
	if v.miss {
		missKey := v.missKey
		cacheViewPool.Put(v)
		return nil, missKey, false, nil
	}
	worst, maxFill := v.worst, v.maxFill
	cacheViewPool.Put(v)
	if c.cacheAudit != nil {
		c.cacheAudit.AuditServed(bound, worst, traceID)
	}
	if sess != nil {
		sess.advance(maxFill)
	}
	return res, cache.Key{}, true, err
}

// readCached is the freshness-priced read path: spend the client's
// staleness budget locally before paying the network. Phase 1 serves
// the read from valid cache entries alone (zero network hops, zero
// allocations). On a miss, concurrent readers of the hot key collapse
// into one singleflight fill, the read executes through FreshConn, and
// every point-read result is filled back stamped with the serving
// node's observed staleness and OpTime.
//
// handled=false means the cached path does not apply (no cache, no
// bound, linearizable preference) and the caller must run the normal
// path. sess, when non-nil, supplies the causal token and receives
// advances.
func (c *Client) readCached(p sim.Proc, opts ReadOptions, tctx trace.Context, sess *Session, fn func(v cluster.ReadView) (any, error)) (any, int, time.Duration, bool, error) {
	if c.cache == nil || opts.AuditBoundSecs <= 0 || opts.Pref == Linearizable {
		return nil, 0, 0, false, nil
	}
	var after oplog.OpTime
	if sess != nil {
		after = sess.opTime
	}
	start := p.Now()
	res, missKey, served, err := c.tryCacheHit(p, opts.AuditBoundSecs, after, tctx.TraceID, sess, fn)
	if served {
		c.recordCacheSpan(p, tctx, start, opts, true)
		return res, -1, p.Now() - start, true, err
	}
	// Singleflight on the first missing key: one leader fetches, the
	// collapsed followers wait and re-check before fetching themselves.
	if !c.cache.BeginFill(p, missKey) {
		res, _, served, err = c.tryCacheHit(p, opts.AuditBoundSecs, after, tctx.TraceID, sess, fn)
		if served {
			c.recordCacheSpan(p, tctx, start, opts, true)
			return res, -1, p.Now() - start, true, err
		}
		if !c.cache.BeginFill(p, missKey) {
			// A second leader is already refetching; fetch alongside it
			// rather than queueing indefinitely.
			return c.fillRead(p, opts, tctx, sess, after, start, fn)
		}
	}
	defer c.cache.EndFill(missKey)
	return c.fillRead(p, opts, tctx, sess, after, start, fn)
}

// fillRead is the miss path: execute the read through FreshConn at a
// selected server (with the same down-node fallback as ReadTraced) and
// fill the cache from the recorded point reads.
func (c *Client) fillRead(p sim.Proc, opts ReadOptions, tctx trace.Context, sess *Session, after oplog.OpTime, start time.Duration, fn func(v cluster.ReadView) (any, error)) (any, int, time.Duration, bool, error) {
	nodeID, err := c.SelectServer(opts)
	if err != nil {
		return nil, -1, p.Now() - start, true, err
	}
	var spanID uint64
	if tctx.Live() {
		spanID = c.tracer.NewSpanID()
	}
	meta := cluster.ReadMeta{
		Ctx:       trace.Context{TraceID: tctx.TraceID, SpanID: spanID, Route: tctx.Route},
		BoundSecs: opts.AuditBoundSecs,
	}
	rec := &fillRecorder{}
	wrapped := func(v cluster.ReadView) (any, error) {
		rec.inner = v
		rec.cols, rec.docs = rec.cols[:0], rec.docs[:0]
		return fn(rec)
	}
	res, ts, observed, err := c.fresh.ExecReadFreshMeta(p, nodeID, after, meta, wrapped)
	if errors.Is(err, cluster.ErrNodeDown) {
		switch opts.Pref {
		case PrimaryPreferred:
			fallback := opts
			fallback.Pref = Secondary
			if id2, err2 := c.SelectServer(fallback); err2 == nil {
				c.obsFallbacks.Inc(1)
				res, ts, observed, err = c.fresh.ExecReadFreshMeta(p, id2, after, meta, wrapped)
				nodeID = id2
			}
		case SecondaryPreferred:
			c.obsFallbacks.Inc(1)
			nodeID = c.conn.PrimaryID()
			res, ts, observed, err = c.fresh.ExecReadFreshMeta(p, nodeID, after, meta, wrapped)
		}
	}
	if err == nil {
		now := p.Now()
		for i := range rec.docs {
			key := cache.Key{Collection: rec.cols[i], ID: rec.docs[i].ID()}
			c.cache.Put(now, key, rec.docs[i], observed, ts, 0)
		}
		if sess != nil {
			sess.advance(ts)
		}
	}
	lat := p.Now() - start
	if tctx.Live() {
		c.tracer.Record(trace.Span{
			Trace:  tctx.TraceID,
			ID:     spanID,
			Parent: tctx.SpanID,
			Name:   "driver.read",
			Node:   -1,
			Start:  start,
			Dur:    lat,
			Attrs: []trace.Attr{
				{K: "pref", V: opts.Pref.String()},
				{K: "node", V: strconv.Itoa(nodeID)},
				{K: "cache", V: "fill"},
			},
		})
	}
	return res, nodeID, lat, true, err
}

func (c *Client) recordCacheSpan(p sim.Proc, tctx trace.Context, start time.Duration, opts ReadOptions, hit bool) {
	if !tctx.Live() {
		return
	}
	c.tracer.Record(trace.Span{
		Trace:  tctx.TraceID,
		ID:     c.tracer.NewSpanID(),
		Parent: tctx.SpanID,
		Name:   "driver.read",
		Node:   -1,
		Start:  start,
		Dur:    p.Now() - start,
		Attrs: []trace.Attr{
			{K: "pref", V: opts.Pref.String()},
			{K: "cache", V: "hit"},
		},
	})
}

// invalidatingTxn wraps a WriteTxn and records the keys it mutates so
// the client can write-through invalidate its cache after commit.
type invalidatingTxn struct {
	cluster.WriteTxn
	keys []cache.Key
}

func (t *invalidatingTxn) Insert(collection string, doc storage.Document) error {
	t.keys = append(t.keys, cache.Key{Collection: collection, ID: doc.ID()})
	return t.WriteTxn.Insert(collection, doc)
}

func (t *invalidatingTxn) Set(collection, id string, fields storage.Document) error {
	t.keys = append(t.keys, cache.Key{Collection: collection, ID: id})
	return t.WriteTxn.Set(collection, id, fields)
}

func (t *invalidatingTxn) Delete(collection, id string) error {
	t.keys = append(t.keys, cache.Key{Collection: collection, ID: id})
	return t.WriteTxn.Delete(collection, id)
}

// invalidateKeys drops the written keys after a committed transaction.
// Invalidation (not refresh) is deliberate: the commit's OpTime is
// newer than any concurrent fill, so dropping is always safe, and the
// next bounded read refills with a properly stamped entry.
func (c *Client) invalidateKeys(keys []cache.Key) {
	for _, k := range keys {
		c.cache.InvalidateKey(k)
	}
}
