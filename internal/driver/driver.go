// Package driver implements a MongoDB-like client: Read Preference
// options (primary, primaryPreferred, secondary, secondaryPreferred,
// nearest), server selection with the 15 ms latency window over
// EWMA-smoothed RTTs, the maxStalenessSeconds option with MongoDB's
// 90-second floor, and a background topology monitor.
//
// Decongestant sits above this driver: it flips a biased coin per read
// and passes Pref Primary or Secondary accordingly, exactly as the
// paper's clients do.
package driver

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"decongestant/internal/cache"
	"decongestant/internal/cluster"
	"decongestant/internal/obs"
	"decongestant/internal/obs/trace"
	"decongestant/internal/oplog"
	"decongestant/internal/sim"
)

// ReadPref selects where read operations are routed.
type ReadPref int

const (
	// Primary routes reads to the primary (the MongoDB default).
	Primary ReadPref = iota
	// PrimaryPreferred prefers the primary, falling back to a
	// secondary when the primary is unavailable.
	PrimaryPreferred
	// Secondary routes reads to a randomly chosen secondary within
	// the latency window.
	Secondary
	// SecondaryPreferred prefers secondaries, falling back to the
	// primary when none is available.
	SecondaryPreferred
	// Nearest routes to the lowest-latency member regardless of role.
	Nearest
	// Linearizable routes strong reads across every lease-holding
	// member (leader-leased primary and read-leased secondaries) within
	// the latency window. A member that cannot honor its lease rejects
	// with a retryable error and the read falls back to the primary.
	Linearizable
)

func (r ReadPref) String() string {
	switch r {
	case Primary:
		return "primary"
	case PrimaryPreferred:
		return "primaryPreferred"
	case Secondary:
		return "secondary"
	case SecondaryPreferred:
		return "secondaryPreferred"
	case Nearest:
		return "nearest"
	case Linearizable:
		return "linearizable"
	}
	return fmt.Sprintf("ReadPref(%d)", int(r))
}

// LatencyWindow is the server-selection latency window: eligible
// members whose smoothed RTT is within this much of the fastest
// eligible member may be chosen (MongoDB uses 15 ms).
const LatencyWindow = 15 * time.Millisecond

// SmallestMaxStalenessSeconds is MongoDB's floor for the
// maxStalenessSeconds read option. The paper's point is that
// Decongestant bounds staleness far below this floor.
const SmallestMaxStalenessSeconds = 90

// ErrNoEligibleServer is returned when server selection finds no
// member satisfying the read preference.
var ErrNoEligibleServer = errors.New("driver: no server satisfies the read preference")

// ErrMaxStalenessTooSmall is returned for 0 < maxStalenessSeconds < 90.
var ErrMaxStalenessTooSmall = fmt.Errorf("driver: maxStalenessSeconds must be >= %d", SmallestMaxStalenessSeconds)

// ErrNoLinearizable is returned when the connection lacks the
// LinearizableConn capability.
var ErrNoLinearizable = errors.New("driver: connection does not support linearizable reads")

// ReadOptions carries per-read routing options.
type ReadOptions struct {
	Pref ReadPref
	// MaxStalenessSeconds filters out secondaries whose estimated
	// staleness exceeds the value. 0 means no bound. Values below
	// SmallestMaxStalenessSeconds are rejected, as in MongoDB.
	MaxStalenessSeconds int64
	// AuditBoundSecs is the freshness bound, in seconds, the caller
	// promises for this read — the value the serving side's freshness
	// auditor checks observed staleness against. Unlike
	// MaxStalenessSeconds it does not affect routing and has no floor
	// (the Decongestant balancer bounds staleness far below MongoDB's);
	// 0 means no declared bound.
	AuditBoundSecs int64
}

// Conn abstracts the deployed replica set from the client's side —
// implemented by *cluster.ReplicaSet in-process and by the wire
// client over TCP.
type Conn interface {
	NodeIDs() []int
	PrimaryID() int
	Zone(id int) string
	ExecRead(p sim.Proc, nodeID int, fn func(v cluster.ReadView) (any, error)) (any, error)
	ExecWrite(p sim.Proc, fn func(tx cluster.WriteTxn) (any, error)) (any, error)
	Ping(p sim.Proc, nodeID int) time.Duration
	ServerStatus(p sim.Proc, nodeID int) cluster.Status
}

// TracedConn is the optional connection capability that threads a
// trace context and an audited staleness bound through read execution
// (cluster.ExecReadMeta). Both the in-process replica set and the wire
// client implement it; plain Conns simply skip per-read auditing.
type TracedConn interface {
	Conn
	ExecReadMeta(p sim.Proc, nodeID int, after oplog.OpTime, meta cluster.ReadMeta, fn func(v cluster.ReadView) (any, error)) (any, oplog.OpTime, error)
}

// TraceProvider is implemented by connections that carry their own
// span recorder. The driver records its spans there, so one trace id
// retrieves every hop from driver to serving node.
type TraceProvider interface {
	Tracer() *trace.Recorder
}

// LinearizableConn is the optional connection capability backing
// lease-based linearizable reads (cluster.ExecReadLinearizableMeta):
// the primary serves under its leader lease or a majority-confirm
// round, a secondary from a valid read lease, rejecting with a typed
// *cluster.LeaseError otherwise. Both the in-process replica set and
// the wire client implement it.
type LinearizableConn interface {
	Conn
	ExecReadLinearizableMeta(p sim.Proc, nodeID int, after oplog.OpTime, meta cluster.ReadMeta, fn func(v cluster.ReadView) (any, error)) (any, oplog.OpTime, error)
}

// OplogTailer is the optional change-feed capability: scan the
// primary's oplog after an OpTime, returning decoded entries plus the
// primary's lastApplied and the log's truncation horizon (see
// cluster.ReplicaSet.OplogTail for the semantics). The in-process
// cluster conn and the wire client both offer it; chunk migration
// type-asserts for it to drain a source shard's writes.
type OplogTailer interface {
	OplogTail(p sim.Proc, after oplog.OpTime, max int) ([]oplog.DecodedEntry, oplog.OpTime, oplog.OpTime, error)
}

// Statically assert the in-process replica set satisfies Conn and the
// trace capabilities.
var (
	_ Conn             = (*clusterConn)(nil)
	_ TracedConn       = (*clusterConn)(nil)
	_ TraceProvider    = (*clusterConn)(nil)
	_ LinearizableConn = (*clusterConn)(nil)
)

type clusterConn struct{ *cluster.ReplicaSet }

// WrapCluster adapts an in-process replica set to the Conn interface.
func WrapCluster(rs *cluster.ReplicaSet) Conn { return clusterConn{rs} }

// MetricsProvider is implemented by connections that carry their own
// observability registry (the in-process cluster does). NewClient
// registers the driver's instruments there so one snapshot covers
// cluster, driver and balancer; connections without one (the wire
// client) get a fresh client-side registry instead.
type MetricsProvider interface {
	Metrics() *obs.Registry
}

// Client is a replica-set-aware session shared by any number of
// workload processes. It is safe for concurrent use under the
// real-time environment.
type Client struct {
	conn   Conn
	rng    *rand.Rand
	reg    *obs.Registry
	tracer *trace.Recorder

	// Freshness-priced read cache (nil when disabled). fresh and
	// cacheAudit are the connection's capabilities, resolved once at
	// EnableCache so the hot path never type-asserts.
	cache      *cache.Cache
	fresh      FreshConn
	cacheAudit CacheAuditor

	// Cached registry instruments (atomic; no lock needed).
	obsSelections  [6]*obs.Counter // indexed by ReadPref
	obsNoEligible  *obs.Counter
	obsFallbacks   *obs.Counter
	obsRTTSkips    *obs.Counter
	obsStatusSkips *obs.Counter

	mu       sync.Mutex
	rtt      map[int]time.Duration // EWMA per node
	lastStat *cluster.Status       // latest topology staleness view
}

// NewClient creates a client over the given connection. RTT estimates
// start empty and fill in as the monitor (or the Read Balancer's RTT
// pinger) collects real samples; until a node has a sample it is
// excluded from the latency window and picked only as a last resort.
func NewClient(env sim.Env, conn Conn) *Client {
	reg := obs.NewRegistry()
	if mp, ok := conn.(MetricsProvider); ok {
		reg = mp.Metrics()
	}
	c := &Client{
		conn: conn,
		rng:  env.NewRand("driver-client"),
		reg:  reg,
		rtt:  make(map[int]time.Duration),
	}
	if tp, ok := conn.(TraceProvider); ok {
		c.tracer = tp.Tracer()
	} else {
		c.tracer = trace.NewRecorder(env.NewRand("driver-trace"), trace.Config{})
	}
	for pref := Primary; pref <= Linearizable; pref++ {
		c.obsSelections[pref] = reg.Counter(obs.Name("driver.selections", "pref", pref.String()))
	}
	c.obsNoEligible = reg.Counter("driver.no_eligible_server")
	c.obsFallbacks = reg.Counter("driver.fallback_retries")
	c.obsRTTSkips = reg.Counter("driver.rtt_skips")
	c.obsStatusSkips = reg.Counter("driver.status_skips")
	return c
}

// Conn returns the underlying connection.
func (c *Client) Conn() Conn { return c.conn }

// Tracer returns the span recorder the client's reads record into —
// the connection's own recorder when it provides one. Sampling is
// controlled there (Recorder.SetSampling).
func (c *Client) Tracer() *trace.Recorder { return c.tracer }

// Metrics returns the registry the client's instruments live in —
// the connection's own registry when it provides one.
func (c *Client) Metrics() *obs.Registry { return c.reg }

// StartMonitor launches the topology monitor: it pings every member
// and refreshes the primary's serverStatus on the given interval,
// feeding server selection (MongoDB's client monitors do the same
// roughly every 10 seconds). When the primary is down or mid-failover
// the status sample is skipped — and counted — rather than cached as
// if it were a valid staleness view.
func (c *Client) StartMonitor(env sim.Env, interval time.Duration) {
	env.Spawn("driver/monitor", func(p sim.Proc) {
		for {
			c.RefreshRTTs(p)
			if st := c.conn.ServerStatus(p, c.conn.PrimaryID()); st.OK() {
				c.mu.Lock()
				c.lastStat = &st
				c.mu.Unlock()
			} else {
				c.obsStatusSkips.Inc(1)
			}
			p.Sleep(interval)
		}
	})
}

// RefreshRTTs pings every node once and folds the samples into the
// EWMA estimates (MongoDB's alpha is 0.2). Failed pings — a down
// node's probe returns a negative duration — are skipped and counted,
// never folded into the estimate.
func (c *Client) RefreshRTTs(p sim.Proc) {
	for _, id := range c.conn.NodeIDs() {
		sample := c.conn.Ping(p, id)
		if sample < 0 {
			c.obsRTTSkips.Inc(1)
			continue
		}
		c.mu.Lock()
		if prev, ok := c.rtt[id]; ok {
			c.rtt[id] = time.Duration(0.8*float64(prev) + 0.2*float64(sample))
		} else {
			c.rtt[id] = sample
		}
		c.mu.Unlock()
	}
}

// RTT returns the smoothed round-trip estimate for a node (0 if not
// yet measured).
func (c *Client) RTT(id int) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rtt[id]
}

// SelectServer picks the node a read with the given options should go
// to, applying role filtering, the maxStaleness filter, and the 15 ms
// latency window.
func (c *Client) SelectServer(opts ReadOptions) (int, error) {
	if opts.MaxStalenessSeconds != 0 && opts.MaxStalenessSeconds < SmallestMaxStalenessSeconds {
		return 0, ErrMaxStalenessTooSmall
	}
	if int(opts.Pref) >= 0 && int(opts.Pref) < len(c.obsSelections) {
		c.obsSelections[opts.Pref].Inc(1)
	}
	primary := c.conn.PrimaryID()
	var secondaries []int
	for _, id := range c.conn.NodeIDs() {
		if id != primary {
			secondaries = append(secondaries, id)
		}
	}
	if opts.MaxStalenessSeconds > 0 {
		secondaries = c.filterByStaleness(secondaries, opts.MaxStalenessSeconds)
	}
	switch opts.Pref {
	case Primary:
		return primary, nil
	case PrimaryPreferred:
		return primary, nil // the primary is tracked via PrimaryID
	case Secondary:
		if len(secondaries) == 0 {
			c.obsNoEligible.Inc(1)
			return 0, ErrNoEligibleServer
		}
		return c.pickWithinWindow(secondaries), nil
	case SecondaryPreferred:
		if len(secondaries) > 0 {
			return c.pickWithinWindow(secondaries), nil
		}
		return primary, nil
	case Nearest:
		return c.pickWithinWindow(append(secondaries, primary)), nil
	case Linearizable:
		// Route across the members the monitor last saw holding leases,
		// always keeping the primary eligible (it can serve any strong
		// read, leased or not). The view may be stale — a member that
		// lost its lease since simply rejects and the read falls back.
		cands := c.leasedCandidates()
		havePrimary := false
		for _, id := range cands {
			if id == primary {
				havePrimary = true
				break
			}
		}
		if !havePrimary {
			cands = append(cands, primary)
		}
		return c.pickWithinWindow(cands), nil
	default:
		return 0, fmt.Errorf("driver: unknown read preference %v", opts.Pref)
	}
}

// leasedCandidates returns the node ids the latest topology snapshot
// reported as lease holders (empty when leases are off or no snapshot
// has arrived yet).
func (c *Client) leasedCandidates() []int {
	c.mu.Lock()
	st := c.lastStat
	c.mu.Unlock()
	if st == nil || st.LeaseEpoch == 0 {
		return nil
	}
	var out []int
	for _, m := range st.Members {
		if m.Leased {
			out = append(out, m.ID)
		}
	}
	return out
}

func (c *Client) filterByStaleness(ids []int, bound int64) []int {
	c.mu.Lock()
	st := c.lastStat
	c.mu.Unlock()
	if st == nil {
		return ids
	}
	var out []int
	for _, id := range ids {
		if st.StalenessSecs(id) <= bound {
			out = append(out, id)
		}
	}
	return out
}

// pickWithinWindow chooses randomly among candidates whose EWMA RTT is
// within LatencyWindow of the fastest candidate.
func (c *Client) pickWithinWindow(candidates []int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	best := time.Duration(-1)
	for _, id := range candidates {
		r, ok := c.rtt[id]
		if !ok {
			continue
		}
		if best < 0 || r < best {
			best = r
		}
	}
	var eligible []int
	if best >= 0 {
		for _, id := range candidates {
			if r, ok := c.rtt[id]; ok && r <= best+LatencyWindow {
				eligible = append(eligible, id)
			}
		}
	}
	if len(eligible) == 0 {
		eligible = candidates
	}
	return eligible[c.rng.Intn(len(eligible))]
}

// Read selects a server per opts and runs the read body there,
// retrying once on the fallback role for the *Preferred preferences.
// It returns the body result, the chosen node, and the end-to-end
// latency observed by the client. Read originates the trace sampling
// decision; with sampling off and no audit bound it is the untraced
// fast path.
func (c *Client) Read(p sim.Proc, opts ReadOptions, fn func(v cluster.ReadView) (any, error)) (any, int, time.Duration, error) {
	return c.ReadTraced(p, opts, c.tracer.StartTrace(), fn)
}

// ReadTraced is Read under an externally originated trace context (the
// core router passes one carrying the balancer's routing decision):
// the read is recorded as a driver.read span parented on tctx, and the
// context plus opts.AuditBoundSecs propagate to the serving node. With
// a dead context and no bound it behaves exactly like the pre-trace
// Read.
func (c *Client) ReadTraced(p sim.Proc, opts ReadOptions, tctx trace.Context, fn func(v cluster.ReadView) (any, error)) (any, int, time.Duration, error) {
	if res, nodeID, lat, handled, err := c.readCached(p, opts, tctx, nil, fn); handled {
		return res, nodeID, lat, err
	}
	tc, traced := c.conn.(TracedConn)
	if !traced || (!tctx.Live() && opts.AuditBoundSecs == 0) {
		return c.readPlain(p, opts, fn)
	}
	nodeID, err := c.SelectServer(opts)
	if err != nil {
		return nil, -1, 0, err
	}
	var spanID uint64
	if tctx.Live() {
		spanID = c.tracer.NewSpanID()
	}
	meta := cluster.ReadMeta{
		Ctx:       trace.Context{TraceID: tctx.TraceID, SpanID: spanID, Route: tctx.Route},
		BoundSecs: opts.AuditBoundSecs,
	}
	start := p.Now()
	res, _, err := tc.ExecReadMeta(p, nodeID, oplog.Zero, meta, fn)
	if errors.Is(err, cluster.ErrNodeDown) {
		switch opts.Pref {
		case PrimaryPreferred:
			fallback := opts
			fallback.Pref = Secondary
			if id2, err2 := c.SelectServer(fallback); err2 == nil {
				c.obsFallbacks.Inc(1)
				res, _, err = tc.ExecReadMeta(p, id2, oplog.Zero, meta, fn)
				nodeID = id2
			}
		case SecondaryPreferred:
			c.obsFallbacks.Inc(1)
			nodeID = c.conn.PrimaryID()
			res, _, err = tc.ExecReadMeta(p, nodeID, oplog.Zero, meta, fn)
		}
	}
	lat := p.Now() - start
	if tctx.Live() {
		c.tracer.Record(trace.Span{
			Trace:  tctx.TraceID,
			ID:     spanID,
			Parent: tctx.SpanID,
			Name:   "driver.read",
			Node:   -1,
			Start:  start,
			Dur:    lat,
			Attrs: []trace.Attr{
				{K: "pref", V: opts.Pref.String()},
				{K: "node", V: strconv.Itoa(nodeID)},
			},
		})
	}
	return res, nodeID, lat, err
}

func (c *Client) readPlain(p sim.Proc, opts ReadOptions, fn func(v cluster.ReadView) (any, error)) (any, int, time.Duration, error) {
	nodeID, err := c.SelectServer(opts)
	if err != nil {
		return nil, -1, 0, err
	}
	start := p.Now()
	res, err := c.conn.ExecRead(p, nodeID, fn)
	if errors.Is(err, cluster.ErrNodeDown) {
		switch opts.Pref {
		case PrimaryPreferred:
			fallback := opts
			fallback.Pref = Secondary
			if id2, err2 := c.SelectServer(fallback); err2 == nil {
				c.obsFallbacks.Inc(1)
				res, err = c.conn.ExecRead(p, id2, fn)
				nodeID = id2
			}
		case SecondaryPreferred:
			c.obsFallbacks.Inc(1)
			nodeID = c.conn.PrimaryID()
			res, err = c.conn.ExecRead(p, nodeID, fn)
		}
	}
	return res, nodeID, p.Now() - start, err
}

// Write runs a write transaction at the primary and returns the
// result and end-to-end latency. With the cache enabled, written keys
// are write-through invalidated after commit.
func (c *Client) Write(p sim.Proc, fn func(tx cluster.WriteTxn) (any, error)) (any, time.Duration, error) {
	start := p.Now()
	if c.cache != nil {
		rec := &invalidatingTxn{}
		res, err := c.conn.ExecWrite(p, func(tx cluster.WriteTxn) (any, error) {
			rec.WriteTxn = tx
			return fn(rec)
		})
		if err == nil {
			c.invalidateKeys(rec.keys)
		}
		return res, p.Now() - start, err
	}
	res, err := c.conn.ExecWrite(p, fn)
	return res, p.Now() - start, err
}

// Linearizable routing reasons, as surfaced to the balancer's decision
// ring and the slow-op log. "lease-valid" means a leased member served
// the read locally; the "→primary" forms attribute the extra hop a
// lease rejection caused.
const (
	RouteLeaseValid = "lease-valid"
	RoutePrimary    = "primary" // unleased primary served (majority-confirm baseline)
)

// ReadLinearizable selects a lease-holding member and runs a
// linearizable read there, falling back to the primary on a lease
// rejection. It returns the body result, the serving node, the
// end-to-end latency, and the routing reason ("lease-valid",
// "lease-expired→primary", "commit-point-behind→primary", ...).
func (c *Client) ReadLinearizable(p sim.Proc, opts ReadOptions, fn func(v cluster.ReadView) (any, error)) (any, int, time.Duration, string, error) {
	res, node, _, lat, reason, err := c.readLinearizable(p, opts, c.tracer.StartTrace(), oplog.Zero, fn)
	return res, node, lat, reason, err
}

// ReadLinearizableTraced is ReadLinearizable under an externally
// originated trace context (the core router passes one carrying its
// routing decision).
func (c *Client) ReadLinearizableTraced(p sim.Proc, opts ReadOptions, tctx trace.Context, fn func(v cluster.ReadView) (any, error)) (any, int, time.Duration, string, error) {
	res, node, _, lat, reason, err := c.readLinearizable(p, opts, tctx, oplog.Zero, fn)
	return res, node, lat, reason, err
}

// readLinearizable is the shared linearizable read path: select a
// lease holder, execute, and on a typed lease rejection (or a down
// node) retry at the primary — attributing WHY the read was redirected
// through driver.lease_fallbacks{reason}, the driver.read span's
// reason attribute, and the returned reason string, so currentOp and
// the slow-op log can explain the extra hop. `after` is the session's
// causal token (read-your-writes composes with linearizable reads).
func (c *Client) readLinearizable(p sim.Proc, opts ReadOptions, tctx trace.Context, after oplog.OpTime, fn func(v cluster.ReadView) (any, error)) (any, int, oplog.OpTime, time.Duration, string, error) {
	lc, ok := c.conn.(LinearizableConn)
	if !ok {
		return nil, -1, oplog.Zero, 0, "", ErrNoLinearizable
	}
	opts.Pref = Linearizable
	nodeID, err := c.SelectServer(opts)
	if err != nil {
		return nil, -1, oplog.Zero, 0, "", err
	}
	var spanID uint64
	if tctx.Live() {
		spanID = c.tracer.NewSpanID()
	}
	meta := cluster.ReadMeta{
		Ctx:       trace.Context{TraceID: tctx.TraceID, SpanID: spanID, Route: tctx.Route},
		BoundSecs: opts.AuditBoundSecs,
	}
	start := p.Now()
	res, ts, err := lc.ExecReadLinearizableMeta(p, nodeID, after, meta, fn)
	reason := RouteLeaseValid
	if nodeID == c.conn.PrimaryID() {
		reason = RoutePrimary
	}
	// Fallback: a lease rejection or a down member redirects to the
	// primary (twice at most — a failover between attempts moves the
	// primary once). The rejection reason is preserved end to end.
	for attempt := 0; attempt < 2 && err != nil; attempt++ {
		why, isLease := cluster.LeaseReject(err)
		if !isLease {
			if !errors.Is(err, cluster.ErrNodeDown) {
				break
			}
			why = "node-down"
		}
		primary := c.conn.PrimaryID()
		if nodeID == primary {
			break // the primary itself rejected; nothing further to try
		}
		c.obsFallbacks.Inc(1)
		c.reg.Counter(obs.Name("driver.lease_fallbacks", "reason", why)).Inc(1)
		reason = why + "→primary"
		// Rewrite the route snapshot riding the wire so the primary's
		// slow-op log and currentOp attribute the redirected hop to its
		// cause, not to the original routing choice.
		if meta.Ctx.Route != nil {
			rt := *meta.Ctx.Route
			rt.Reason = reason
			meta.Ctx.Route = &rt
		}
		nodeID = primary
		res, ts, err = lc.ExecReadLinearizableMeta(p, nodeID, after, meta, fn)
	}
	lat := p.Now() - start
	if tctx.Live() {
		c.tracer.Record(trace.Span{
			Trace:  tctx.TraceID,
			ID:     spanID,
			Parent: tctx.SpanID,
			Name:   "driver.read",
			Node:   -1,
			Start:  start,
			Dur:    lat,
			Attrs: []trace.Attr{
				{K: "pref", V: Linearizable.String()},
				{K: "node", V: strconv.Itoa(nodeID)},
				{K: "reason", V: reason},
			},
		})
	}
	return res, nodeID, ts, lat, reason, err
}
