package driver

// Benchmarks for the PR 10 headline claim: spending the client's
// staleness budget locally beats paying the server for every read.
// Both driver benchmarks run the identical Zipf hot-key point-read
// workload against the identical replica set — same modeled per-read
// service time, same CPU slots — differing only in whether the
// freshness-priced cache is enabled. With a 30 s bound and no writers,
// nearly every cache-on read is a local hit; every cache-off read pays
// the modeled service time at a node. The gate (`make bench-pr10`)
// requires cache-on to clear 5x cache-off within the run, and the hit
// path to stay at zero allocations per op.
//
// Service time is simulated (a Sleep while the node's CPU slot is
// held), so the ratio measures placement — local memory versus a
// capacity-limited server — not the host's parallelism.
//
// Run with:
//
//	go test ./internal/driver -bench 'BenchmarkDriverCache|BenchmarkCacheHitPath' -benchtime 2s -count 3 -benchmem

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"decongestant/internal/cache"
	"decongestant/internal/cluster"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

const (
	cacheBenchDocs   = 512
	cacheBenchFanout = 64 // parallel clients per GOMAXPROCS
	cacheBenchBound  = 30 // seconds; >> benchtime, so entries never expire mid-run
)

func cacheBenchDocID(i int) string { return fmt.Sprintf("c%04d", i) }

// cacheBenchSet builds the real-time replica set both arms share: a
// modeled 2 ms read service time and 4 CPU slots per node bound the
// server-side read capacity, and the documents are preloaded on every
// member so secondaries can serve immediately.
func cacheBenchSet(b *testing.B, withCache bool) (*sim.RealtimeEnv, *Client) {
	b.Helper()
	env := sim.NewRealtimeEnv(10)
	cfg := cluster.DefaultConfig()
	cfg.ReadCost = 2 * time.Millisecond
	cfg.CPUSlots = 4
	cfg.ReplIdlePoll = 5 * time.Millisecond
	cfg.CheckpointInterval = time.Hour
	cfg.NoopInterval = time.Hour
	rs := cluster.New(env, cfg)
	err := rs.Bootstrap(func(s *storage.Store) error {
		c := s.C("bench")
		for i := 0; i < cacheBenchDocs; i++ {
			if err := c.Insert(storage.D{"_id": cacheBenchDocID(i), "val": int64(i)}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	c := NewClient(env, WrapCluster(rs))
	if withCache {
		if c.EnableCache(env, cache.Config{}) == nil {
			b.Fatal("EnableCache returned nil")
		}
	}
	return env, c
}

// benchDriverReads drives closed-loop bounded point reads with a Zipf
// key distribution — the hot keys that make a read cache pay.
func benchDriverReads(b *testing.B, withCache bool) {
	env, c := cacheBenchSet(b, withCache)
	defer env.Shutdown()
	ids := make([]string, cacheBenchDocs)
	for i := range ids {
		ids[i] = cacheBenchDocID(i)
	}
	opts := ReadOptions{Pref: Secondary, AuditBoundSecs: cacheBenchBound}
	var seed atomic.Int64
	b.SetParallelism(cacheBenchFanout)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		p := env.Adhoc("bench-cache-reader")
		rng := rand.New(rand.NewSource(seed.Add(1)))
		zipf := rand.NewZipf(rng, 1.2, 1, cacheBenchDocs-1)
		var id string
		fn := func(v cluster.ReadView) (any, error) {
			v.FindByID("bench", id)
			return nil, nil
		}
		for pb.Next() {
			id = ids[zipf.Uint64()]
			if _, _, _, err := c.Read(p, opts, fn); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rt/s")
}

// BenchmarkDriverCacheOn reads through the freshness-priced cache —
// the PR 10 headline number.
func BenchmarkDriverCacheOn(b *testing.B) { benchDriverReads(b, true) }

// BenchmarkDriverCacheOff pays the server for every read — the
// baseline the cache-on number is gated 5x against.
func BenchmarkDriverCacheOff(b *testing.B) { benchDriverReads(b, false) }

// BenchmarkCacheHitPath measures the pure hit path: one pre-filled hot
// key read back under its bound, single-threaded. Gated at zero
// allocations per op — the pooled cache view, the stack-allocated key,
// and the auditor's cached histogram must keep the heap out of it.
func BenchmarkCacheHitPath(b *testing.B) {
	env, c := cacheBenchSet(b, true)
	defer env.Shutdown()
	p := env.Adhoc("bench-hit-reader")
	opts := ReadOptions{Pref: Secondary, AuditBoundSecs: cacheBenchBound}
	id := cacheBenchDocID(0)
	fn := func(v cluster.ReadView) (any, error) {
		v.FindByID("bench", id)
		return nil, nil
	}
	if _, _, _, err := c.Read(p, opts, fn); err != nil { // fill
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := c.Read(p, opts, fn); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if s := c.Cache().Snapshot(); s.Hits < uint64(b.N) {
		b.Fatalf("hit path missed: %+v over %d reads", s, b.N)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rt/s")
}
