package driver

// Driver-side tests for PR 9: linearizable server selection across
// lease holders, the primary fallback with end-to-end reason
// attribution, and session composition (read-your-writes tokens ride
// linearizable reads).

import (
	"strings"
	"testing"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/obs"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

func leaseSetup(seed int64) (*sim.VirtualEnv, *cluster.ReplicaSet, *Client) {
	env := sim.NewEnv(seed)
	cfg := cluster.DefaultConfig()
	cfg.ReplIdlePoll = 5 * time.Millisecond
	cfg.HeartbeatInterval = 100 * time.Millisecond
	cfg.CheckpointInterval = time.Hour
	cfg.NoopInterval = time.Hour
	cfg.LinearizableLeases = true
	rs := cluster.New(env, cfg)
	c := NewClient(env, WrapClusterCausal(rs))
	return env, rs, c
}

func TestLinearizableReadPrefString(t *testing.T) {
	if Linearizable.String() != "linearizable" {
		t.Fatalf("Linearizable.String()=%q", Linearizable.String())
	}
}

// TestSelectServerLinearizableSpreadsAcrossLeaseholders: with a
// topology snapshot showing leased members, linearizable selection
// routes across them — not just the primary — and before any snapshot
// arrives it degrades to primary-only.
func TestSelectServerLinearizableSpreadsAcrossLeaseholders(t *testing.T) {
	env, rs, c := leaseSetup(11)
	defer env.Shutdown()

	// No snapshot yet: only the primary is a candidate.
	if id, err := c.SelectServer(ReadOptions{Pref: Linearizable}); err != nil || id != rs.PrimaryID() {
		t.Fatalf("pre-snapshot selection = %d, %v; want primary %d", id, err, rs.PrimaryID())
	}

	c.StartMonitor(env, 200*time.Millisecond)
	env.Spawn("warm", func(p sim.Proc) { c.RefreshRTTs(p) })
	env.Run(2 * time.Second) // heartbeats grant; monitor observes Leased flags

	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		id, err := c.SelectServer(ReadOptions{Pref: Linearizable})
		if err != nil {
			t.Fatal(err)
		}
		seen[id] = true
	}
	if len(seen) < 2 {
		t.Fatalf("linearizable selection never left the primary: %v", seen)
	}
}

// TestReadLinearizableServedByLeasedSecondary: end to end through the
// driver, linearizable reads see the latest majority-committed write
// and at least some are served locally by a leased secondary with the
// lease-valid routing reason.
func TestReadLinearizableServedByLeasedSecondary(t *testing.T) {
	env, rs, c := leaseSetup(12)
	defer env.Shutdown()
	c.StartMonitor(env, 200*time.Millisecond)

	var localLease int
	env.Spawn("client", func(p sim.Proc) {
		c.RefreshRTTs(p)
		if _, _, err := c.Write(p, func(tx cluster.WriteTxn) (any, error) {
			return nil, tx.Insert("kv", storage.D{"_id": "strong", "v": int64(9)})
		}); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(500 * time.Millisecond) // leases granted + snapshot observed
		for i := 0; i < 20; i++ {
			res, node, _, reason, err := c.ReadLinearizable(p, ReadOptions{}, func(v cluster.ReadView) (any, error) {
				d, ok := v.FindByID("kv", "strong")
				if !ok {
					return int64(-1), nil
				}
				return d.Int("v"), nil
			})
			if err != nil {
				t.Errorf("read %d: %v", i, err)
				return
			}
			if res.(int64) != 9 {
				t.Errorf("read %d saw %d, want 9", i, res.(int64))
				return
			}
			if node != rs.PrimaryID() && reason == RouteLeaseValid {
				localLease++
			}
		}
	})
	env.Run(30 * time.Second)
	if localLease == 0 {
		t.Fatal("no linearizable read was lease-served by a secondary")
	}
}

// TestReadLinearizableFallbackAttributesReason: a secondary that
// cannot honor its advertised lease rejects, and the driver retries at
// the primary while surfacing WHY — in the returned reason, the
// driver.lease_fallbacks counter, and the driver.read span — so the
// extra hop is attributable. The stale snapshot is injected directly:
// the monitor claims leased secondaries while the cluster has leases
// off, so every secondary attempt rejects with no-lease.
func TestReadLinearizableFallbackAttributesReason(t *testing.T) {
	env, rs, c := testSetup(13) // leases OFF in the cluster
	defer env.Shutdown()

	// Forge the monitor view: all members leased under epoch 1.
	st := &cluster.Status{LeaseEpoch: 1}
	for _, id := range rs.NodeIDs() {
		st.Members = append(st.Members, cluster.MemberStatus{
			ID: id, Primary: id == rs.PrimaryID(), Leased: id != rs.PrimaryID(),
		})
	}
	c.mu.Lock()
	c.lastStat = st
	c.mu.Unlock()

	var reason string
	var node int
	env.Spawn("client", func(p sim.Proc) {
		c.RefreshRTTs(p)
		rs.ExecWrite(p, func(tx cluster.WriteTxn) (any, error) {
			return nil, tx.Insert("kv", storage.D{"_id": "fb", "v": 1})
		})
		for i := 0; i < 50; i++ {
			_, n, _, why, err := c.ReadLinearizable(p, ReadOptions{}, func(v cluster.ReadView) (any, error) {
				return nil, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			if strings.Contains(why, "→primary") {
				reason, node = why, n
				return
			}
		}
	})
	env.Run(30 * time.Second)

	want := cluster.LeaseReasonNoLease + "→primary"
	if reason != want {
		t.Fatalf("fallback reason %q, want %q", reason, want)
	}
	if node != rs.PrimaryID() {
		t.Fatalf("fallback served by node %d, want primary %d", node, rs.PrimaryID())
	}
	snap := c.Metrics().Snapshot()
	if got := snap.CounterValue(obs.Name("driver.lease_fallbacks", "reason", cluster.LeaseReasonNoLease)); got == 0 {
		t.Fatal("driver.lease_fallbacks{reason=no-lease} not counted")
	}
}

// TestSessionReadLinearizableComposesToken: a causal session's
// linearizable read carries the session token (read-your-writes) and
// advances it with the served optime.
func TestSessionReadLinearizableComposesToken(t *testing.T) {
	env, _, c := leaseSetup(14)
	defer env.Shutdown()
	c.StartMonitor(env, 200*time.Millisecond)
	sess := c.NewSession()

	env.Spawn("client", func(p sim.Proc) {
		c.RefreshRTTs(p)
		p.Sleep(500 * time.Millisecond)
		if _, _, err := sess.Write(p, func(tx cluster.WriteTxn) (any, error) {
			return nil, tx.Insert("kv", storage.D{"_id": "tok", "v": int64(3)})
		}); err != nil {
			t.Error(err)
			return
		}
		wrote := sess.OperationTime()
		if wrote.IsZero() {
			t.Error("session token not advanced by write")
			return
		}
		res, _, _, _, err := sess.ReadLinearizable(p, ReadOptions{}, func(v cluster.ReadView) (any, error) {
			d, ok := v.FindByID("kv", "tok")
			if !ok {
				return int64(-1), nil
			}
			return d.Int("v"), nil
		})
		if err != nil {
			t.Error(err)
			return
		}
		if res.(int64) != 3 {
			t.Errorf("session linearizable read saw %d, want 3", res.(int64))
		}
		if sess.OperationTime().Before(wrote) {
			t.Errorf("session token regressed: %v < %v", sess.OperationTime(), wrote)
		}
	})
	env.Run(30 * time.Second)
}
