package driver

import (
	"testing"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/obs"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

func testSetup(seed int64) (*sim.VirtualEnv, *cluster.ReplicaSet, *Client) {
	env := sim.NewEnv(seed)
	cfg := cluster.DefaultConfig()
	cfg.ReplIdlePoll = 5 * time.Millisecond
	cfg.HeartbeatInterval = 100 * time.Millisecond
	cfg.CheckpointInterval = time.Hour
	cfg.NoopInterval = time.Hour
	rs := cluster.New(env, cfg)
	c := NewClient(env, WrapCluster(rs))
	return env, rs, c
}

func TestReadPrefStrings(t *testing.T) {
	want := map[ReadPref]string{
		Primary: "primary", PrimaryPreferred: "primaryPreferred",
		Secondary: "secondary", SecondaryPreferred: "secondaryPreferred",
		Nearest: "nearest",
	}
	for pref, s := range want {
		if pref.String() != s {
			t.Errorf("%d.String()=%q want %q", pref, pref.String(), s)
		}
	}
}

func TestSelectServerPrimary(t *testing.T) {
	env, rs, c := testSetup(1)
	defer env.Shutdown()
	id, err := c.SelectServer(ReadOptions{Pref: Primary})
	if err != nil || id != rs.PrimaryID() {
		t.Fatalf("got %d err %v", id, err)
	}
}

func TestSelectServerSecondaryNeverPrimary(t *testing.T) {
	env, rs, c := testSetup(2)
	defer env.Shutdown()
	env.Spawn("warm", func(p sim.Proc) { c.RefreshRTTs(p) })
	env.Run(time.Second)
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		id, err := c.SelectServer(ReadOptions{Pref: Secondary})
		if err != nil {
			t.Fatal(err)
		}
		if id == rs.PrimaryID() {
			t.Fatal("secondary preference chose the primary")
		}
		seen[id] = true
	}
	if len(seen) < 2 {
		t.Errorf("random secondary selection only ever picked %v", seen)
	}
}

func TestMaxStalenessFloor(t *testing.T) {
	env, _, c := testSetup(3)
	defer env.Shutdown()
	if _, err := c.SelectServer(ReadOptions{Pref: Secondary, MaxStalenessSeconds: 10}); err != ErrMaxStalenessTooSmall {
		t.Fatalf("err=%v, want ErrMaxStalenessTooSmall", err)
	}
	if _, err := c.SelectServer(ReadOptions{Pref: Secondary, MaxStalenessSeconds: 90}); err != nil {
		t.Fatalf("90s rejected: %v", err)
	}
}

func TestNearestPrefersClientZoneNode(t *testing.T) {
	env, rs, c := testSetup(4)
	defer env.Shutdown()
	env.Spawn("warm", func(p sim.Proc) {
		for i := 0; i < 20; i++ { // converge the EWMA
			c.RefreshRTTs(p)
		}
	})
	env.Run(time.Minute)
	// Node 0 shares the client zone; with sub-ms RTT spread all nodes
	// fall in the 15ms window, so nearest picks among all. Shrink the
	// window effect by checking RTT ordering instead.
	if c.RTT(0) >= c.RTT(1) || c.RTT(0) >= c.RTT(2) {
		t.Fatalf("same-zone RTT not smallest: %v %v %v", c.RTT(0), c.RTT(1), c.RTT(2))
	}
	if _, err := c.SelectServer(ReadOptions{Pref: Nearest}); err != nil {
		t.Fatal(err)
	}
	_ = rs
}

func TestReadRoutesAndMeasuresLatency(t *testing.T) {
	env, rs, c := testSetup(5)
	defer env.Shutdown()
	rs.Bootstrap(func(s *storage.Store) error {
		return s.C("kv").Insert(storage.D{"_id": "k", "v": int64(7)})
	})
	var lat time.Duration
	var node int
	var val int64
	env.Spawn("client", func(p sim.Proc) {
		c.RefreshRTTs(p)
		res, n, l, err := c.Read(p, ReadOptions{Pref: Secondary}, func(v cluster.ReadView) (any, error) {
			d, _ := v.FindByID("kv", "k")
			return d.Int("v"), nil
		})
		if err != nil {
			t.Error(err)
			return
		}
		val, node, lat = res.(int64), n, l
	})
	env.Run(time.Second)
	if val != 7 {
		t.Fatalf("val=%d", val)
	}
	if node == rs.PrimaryID() {
		t.Fatal("read went to primary")
	}
	if lat <= 0 || lat > 50*time.Millisecond {
		t.Fatalf("implausible latency %v", lat)
	}
}

func TestWriteGoesToPrimary(t *testing.T) {
	env, rs, c := testSetup(6)
	defer env.Shutdown()
	env.Spawn("client", func(p sim.Proc) {
		if _, _, err := c.Write(p, func(tx cluster.WriteTxn) (any, error) {
			return nil, tx.Insert("kv", storage.D{"_id": "w", "v": 1})
		}); err != nil {
			t.Error(err)
		}
	})
	env.Run(time.Second)
	if rs.Primary().Stats().Writes == 0 {
		t.Fatal("primary processed no writes")
	}
}

func TestSecondaryPreferredFallsBackWhenSecondariesDown(t *testing.T) {
	env, rs, c := testSetup(7)
	defer env.Shutdown()
	rs.Bootstrap(func(s *storage.Store) error {
		return s.C("kv").Insert(storage.D{"_id": "k", "v": 1})
	})
	for _, id := range rs.SecondaryIDs() {
		rs.SetDown(id, true)
	}
	var node int
	var err error
	env.Spawn("client", func(p sim.Proc) {
		c.RefreshRTTs(p)
		_, node, _, err = c.Read(p, ReadOptions{Pref: SecondaryPreferred}, func(v cluster.ReadView) (any, error) {
			return nil, nil
		})
	})
	env.Run(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if node != rs.PrimaryID() {
		t.Fatalf("fallback routed to %d, not the primary", node)
	}
}

func TestPrimaryPreferredFallsBackWhenPrimaryDown(t *testing.T) {
	env, rs, c := testSetup(8)
	defer env.Shutdown()
	rs.SetDown(rs.PrimaryID(), true)
	var node int
	var err error
	env.Spawn("client", func(p sim.Proc) {
		c.RefreshRTTs(p)
		_, node, _, err = c.Read(p, ReadOptions{Pref: PrimaryPreferred}, func(v cluster.ReadView) (any, error) {
			return nil, nil
		})
	})
	env.Run(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if node == rs.PrimaryID() {
		t.Fatal("read still went to the down primary")
	}
}

func TestMonitorRefreshesTopology(t *testing.T) {
	env, _, c := testSetup(9)
	defer env.Shutdown()
	c.StartMonitor(env, time.Second)
	env.Run(3 * time.Second)
	if c.RTT(0) == 0 || c.RTT(1) == 0 || c.RTT(2) == 0 {
		t.Fatal("monitor did not measure RTTs")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.lastStat == nil {
		t.Fatal("monitor did not fetch serverStatus")
	}
}

func TestLatencyWindowExcludesSlowNode(t *testing.T) {
	env, _, c := testSetup(10)
	defer env.Shutdown()
	// Fake RTTs: node1 fast, node2 far outside the window.
	c.mu.Lock()
	c.rtt[1] = 1 * time.Millisecond
	c.rtt[2] = 40 * time.Millisecond
	c.mu.Unlock()
	for i := 0; i < 50; i++ {
		id, err := c.SelectServer(ReadOptions{Pref: Secondary})
		if err != nil {
			t.Fatal(err)
		}
		if id == 2 {
			t.Fatal("selection chose a node outside the latency window")
		}
	}
}

// TestMonitorSkipsDownPrimary: when the primary is down the monitor
// must neither cache a garbage staleness view nor fold failed pings
// into the RTT estimates — it skips the samples and counts them.
func TestMonitorSkipsDownPrimary(t *testing.T) {
	env, rs, c := testSetup(11)
	defer env.Shutdown()
	rs.SetDown(rs.PrimaryID(), true)
	c.StartMonitor(env, 100*time.Millisecond)
	env.Run(time.Second)
	c.mu.Lock()
	stat := c.lastStat
	primRTT, hasPrimRTT := c.rtt[rs.PrimaryID()]
	c.mu.Unlock()
	if stat != nil {
		t.Fatalf("monitor cached a status from a down primary: %+v", *stat)
	}
	if hasPrimRTT {
		t.Fatalf("monitor recorded RTT %v for the down primary", primRTT)
	}
	snap := c.Metrics().Snapshot()
	if snap.CounterValue("driver.status_skips") == 0 {
		t.Error("status skips not counted")
	}
	if snap.CounterValue("driver.rtt_skips") == 0 {
		t.Error("rtt skips not counted")
	}
	// Secondaries are still measured.
	if c.RTT(rs.SecondaryIDs()[0]) == 0 {
		t.Error("live secondary has no RTT sample")
	}
}

// TestDriverInstrumentsShareClusterRegistry: selections, fallbacks and
// no-eligible-server events land in the cluster's registry.
func TestDriverInstrumentsShareClusterRegistry(t *testing.T) {
	env, rs, c := testSetup(12)
	defer env.Shutdown()
	if c.Metrics() != rs.Metrics() {
		t.Fatal("in-process client did not adopt the cluster registry")
	}
	for _, id := range rs.SecondaryIDs() {
		rs.SetDown(id, true)
	}
	env.Spawn("client", func(p sim.Proc) {
		c.RefreshRTTs(p)
		// All secondaries down: SecondaryPreferred still selects one
		// (selection is role-based), the read fails with ErrNodeDown,
		// and the driver falls back to the primary.
		if _, _, _, err := c.Read(p, ReadOptions{Pref: SecondaryPreferred}, func(v cluster.ReadView) (any, error) {
			return nil, nil
		}); err != nil {
			t.Error(err)
		}
	})
	env.Run(time.Second)
	snap := rs.Metrics().Snapshot()
	if snap.CounterValue(obs.Name("driver.selections", "pref", "secondaryPreferred")) == 0 {
		t.Error("secondaryPreferred selections not counted")
	}
	if snap.CounterValue("driver.fallback_retries") == 0 {
		t.Error("fallback retries not counted")
	}
}

// TestNoEligibleServerCounted: a single-node replica set has no
// secondaries, so Pref Secondary fails and is counted.
func TestNoEligibleServerCounted(t *testing.T) {
	env := sim.NewEnv(13)
	defer env.Shutdown()
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 1
	cfg.CheckpointInterval = time.Hour
	cfg.NoopInterval = time.Hour
	rs := cluster.New(env, cfg)
	c := NewClient(env, WrapCluster(rs))
	if _, err := c.SelectServer(ReadOptions{Pref: Secondary}); err != ErrNoEligibleServer {
		t.Fatalf("err=%v, want ErrNoEligibleServer", err)
	}
	if c.Metrics().Snapshot().CounterValue("driver.no_eligible_server") != 1 {
		t.Fatal("no-eligible-server not counted")
	}
}
