package experiments

import (
	"fmt"
	"time"

	"decongestant/internal/cache"
	"decongestant/internal/cluster"
	"decongestant/internal/core"
	"decongestant/internal/driver"
	"decongestant/internal/obs"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

// FreshnessCacheArm is one arm of the freshness-priced cache
// experiment: the same gated Decongestant router over the same laggy
// cluster, with the driver cache validating entries either by the
// freshness price (fill staleness + age + guard band ≤ bound) or by a
// naive fixed TTL that ignores how stale the entry already was when it
// was filled.
type FreshnessCacheArm struct {
	Name string
	// Violations is freshness.bound_violations — served reads (node- or
	// cache-served) whose effective staleness exceeded the 3 s bound.
	Violations uint64
	// Audited counts every bound="3" observation (node reads and cache
	// hits both flow through the same auditor).
	Audited uint64
	// HistMaxSecs is the audit histogram's maximum observed staleness.
	HistMaxSecs int64
	// Hits/Misses/Expired are the cache counters.
	Hits, Misses, Expired uint64
	// Reads counts reads issued (SecondaryReads the secondary-flipped,
	// bound-declaring subset); TrueMaxLagSecs is ground-truth worst lag
	// from the independent sampler.
	Reads          int
	SecondaryReads int
	TrueMaxLagSecs int64
	// PinnedTraces counts traces pinned by violations.
	PinnedTraces int
}

// FreshnessCacheResult pairs the priced arm against the naive-TTL arm.
type FreshnessCacheResult struct {
	Title     string
	BoundSecs int64
	Priced    FreshnessCacheArm
	NaiveTTL  FreshnessCacheArm
}

// naiveTTLSecs is the naive arm's fixed TTL. It equals the declared
// bound — the configuration that looks obviously safe — and still
// violates, because a fixed TTL prices every entry as if it were
// filled perfectly fresh.
const naiveTTLSecs = 3

// RunFreshnessCache runs the PR 10 experiment: the sawtooth-lag
// cluster and gated router of RunFreshnessAudit, now with the driver's
// freshness-priced read cache in front. The priced arm spends the
// remaining staleness budget (bound − fill staleness − guard band) and
// records zero violations; the naive arm serves any entry younger than
// a fixed TTL and gets flagged by the same auditor the moment an
// entry's age plus its staleness at fill time exceeds the bound.
// Virtual-time only: both arms are deterministic in the seed.
func RunFreshnessCache(seed int64, runFor time.Duration) *FreshnessCacheResult {
	if runFor <= 0 {
		runFor = 120 * time.Second
	}
	res := &FreshnessCacheResult{
		Title:     fmt.Sprintf("Freshness-priced cache vs naive %ds TTL under 6s sawtooth lag, %ds bound", naiveTTLSecs, freshnessBound),
		BoundSecs: freshnessBound,
	}
	res.Priced = runFreshnessCacheArm(seed, runFor, cache.Config{}, "priced")
	res.NaiveTTL = runFreshnessCacheArm(seed, runFor, cache.Config{NaiveTTLSecs: naiveTTLSecs}, "naive-ttl")
	return res
}

func runFreshnessCacheArm(seed int64, runFor time.Duration, ccfg cache.Config, name string) FreshnessCacheArm {
	env := sim.NewEnv(seed)
	defer env.Shutdown()
	rs := cluster.New(env, freshnessClusterConfig())
	rs.Tracer().SetSampling(1)

	arm := FreshnessCacheArm{Name: name}
	params := core.DefaultParams()
	// The serving-side guard band: the balancer gates one second below
	// the 3 s bound the readers declare. The gate works off serverStatus
	// polls, and between two polls the primary's applied OpTime can
	// advance one more second — gating at bound−1 absorbs that race, so
	// no node-served read is ever beyond the declared bound and any
	// violation in this experiment is the cache policy's alone.
	params.StaleBound = freshnessBound - 1
	params.StalenessPoll = 100 * time.Millisecond
	// A high balance floor: most gate-open reads flip to Secondary and
	// so declare the bound — those are the reads the cache prices.
	params.LowBalPct = 80
	sys := core.NewSystem(env, driver.WrapCluster(rs), params)
	if sys.Client.EnableCache(env, ccfg) == nil {
		panic("experiments: connection lacks FreshConn")
	}
	sys.Client.StartMonitor(env, 10*time.Second)

	// Same steady writer as the audit experiment: the primary's applied
	// OpTime advances every 250 ms while secondaries refresh only every
	// 6 s, so their staleness sawtooths across the 3 s bound. The hot
	// key w000 is written once up front and never again, so its cache
	// entries live and die by the freshness rule alone, not by
	// write-through invalidation.
	env.Spawn("exp/freshcache-writer", func(p sim.Proc) {
		for i := 0; ; i++ {
			key := fmt.Sprintf("w%03d", 1+i%255)
			if i == 0 {
				key = "w000"
			}
			if _, _, err := sys.Client.Write(p, func(tx cluster.WriteTxn) (any, error) {
				return nil, tx.Set("kv", key, storage.D{"v": int64(i)})
			}); err != nil {
				return
			}
			p.Sleep(250 * time.Millisecond)
		}
	})

	primary := rs.PrimaryID()
	trueMax := new(int64)
	sim.Every(env, "exp/freshcache-lag-sampler", 200*time.Millisecond, func(p sim.Proc) {
		for _, id := range rs.NodeIDs() {
			if id == primary {
				continue
			}
			if lag := rs.Primary().LastApplied().LagSeconds(rs.Node(id).LastApplied()); lag > *trueMax {
				*trueMax = lag
			}
		}
	})

	// Readers hammer the hot key, flipping the router's biased coin for
	// the preference but declaring the full 3 s bound (the core router
	// would declare the gate's tightened bound instead — the experiment
	// separates "what the gate enforces" from "what the client promised").
	counts := struct{ reads, secondary int }{}
	for i := 0; i < 3; i++ {
		offset := time.Duration(i) * 55 * time.Millisecond
		env.Spawn(fmt.Sprintf("exp/freshcache-reader-%d", i), func(p sim.Proc) {
			p.Sleep(offset)
			for {
				pref := sys.Router.Choose()
				opts := driver.ReadOptions{Pref: pref}
				if pref == driver.Secondary {
					opts.AuditBoundSecs = freshnessBound
				}
				if _, _, _, err := sys.Client.Read(p, opts, func(v cluster.ReadView) (any, error) {
					v.FindByID("kv", "w000")
					return nil, nil
				}); err == nil {
					counts.reads++
					if pref == driver.Secondary {
						counts.secondary++
					}
				}
				p.Sleep(150 * time.Millisecond)
			}
		})
	}

	env.Run(runFor)

	snap := rs.Metrics().Snapshot()
	arm.Violations = snap.CounterValue("freshness.bound_violations")
	arm.TrueMaxLagSecs = *trueMax
	arm.Reads = counts.reads
	arm.SecondaryReads = counts.secondary
	arm.Hits = snap.CounterValue("cache.hits")
	arm.Misses = snap.CounterValue("cache.misses")
	arm.Expired = snap.CounterValue("cache.expired")
	hist := obs.Name("freshness.observed_staleness_secs", "bound",
		fmt.Sprintf("%d", freshnessBound))
	if inst, ok := snap.Get(hist); ok && inst.Hist != nil {
		arm.Audited = inst.Hist.Count
		arm.HistMaxSecs = int64(inst.Hist.Max)
	}
	arm.PinnedTraces = len(rs.Tracer().Pinned())
	return arm
}
