package experiments

import (
	"testing"
	"time"
)

// TestFreshnessCache asserts the PR 10 headline: under sawtooth lag
// that straddles the bound, the freshness-priced cache serves hits with
// zero bound violations, while a naive fixed TTL equal to the bound —
// the configuration that looks safe — is caught violating by the same
// auditor, because a TTL prices every entry as if it were filled
// perfectly fresh.
func TestFreshnessCache(t *testing.T) {
	res := RunFreshnessCache(701, 120*time.Second)

	p := res.Priced
	if p.TrueMaxLagSecs <= res.BoundSecs {
		t.Fatalf("priced arm: true lag (max %ds) never exceeded the bound (%ds); the experiment is not stressing anything",
			p.TrueMaxLagSecs, res.BoundSecs)
	}
	if p.Hits == 0 {
		t.Fatalf("priced arm: no cache hits — the budget was never spent locally: %+v", p)
	}
	if p.Violations != 0 {
		t.Errorf("priced arm: %d bound violations, want 0: %+v", p.Violations, p)
	}
	if p.PinnedTraces != 0 {
		t.Errorf("priced arm: %d pinned traces, want 0", p.PinnedTraces)
	}
	if p.HistMaxSecs > res.BoundSecs {
		t.Errorf("priced arm: audit histogram max %ds exceeds the %ds bound", p.HistMaxSecs, res.BoundSecs)
	}
	if p.Audited == 0 {
		t.Errorf("priced arm: nothing audited — cache hits are not flowing through the auditor")
	}

	n := res.NaiveTTL
	if n.TrueMaxLagSecs <= res.BoundSecs {
		t.Fatalf("naive arm: true lag (max %ds) never exceeded the bound (%ds)", n.TrueMaxLagSecs, res.BoundSecs)
	}
	if n.Hits == 0 {
		t.Fatalf("naive arm: no cache hits: %+v", n)
	}
	if n.Violations == 0 {
		t.Errorf("naive arm: fixed TTL recorded zero violations — the experiment no longer discriminates: %+v", n)
	}
	if n.HistMaxSecs <= res.BoundSecs {
		t.Errorf("naive arm: audit histogram max %ds never exceeded the %ds bound", n.HistMaxSecs, res.BoundSecs)
	}
}

// TestFreshnessCacheDeterministic: same seed, same result — the
// experiment runs entirely in virtual time.
func TestFreshnessCacheDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full experiment runs")
	}
	a := RunFreshnessCache(702, 90*time.Second)
	b := RunFreshnessCache(702, 90*time.Second)
	if *a != *b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", *a, *b)
	}
}
