package experiments

import (
	"time"

	"decongestant/internal/core"
	"decongestant/internal/workload/ycsb"
)

// Ablations quantify the design choices DESIGN.md calls out, all on
// the same scenario: YCSB-B, 180 clients, 300 s, steady state after
// 100 s of warm-up. Each variant flips exactly one switch of the Read
// Balancer.

// AblationVariant names one controller configuration.
type AblationVariant struct {
	Name   string
	Params core.Params
}

// AblationVariants returns the paper configuration plus one variant
// per design choice.
func AblationVariants() []AblationVariant {
	base := core.DefaultParams()

	noRTT := base
	noRTT.NoRTTSubtraction = true

	noExplore := base
	noExplore.NoExploration = true

	mean := base
	mean.UseMean = true

	secSource := base
	secSource.StalenessFromSecondary = true

	tightRatio := base
	tightRatio.HighRatio = 1.05
	tightRatio.LowRatio = 0.95

	bigDelta := base
	bigDelta.DeltaPct = 30

	return []AblationVariant{
		{Name: "paper", Params: base},
		{Name: "no-rtt-subtraction", Params: noRTT},
		{Name: "no-exploration", Params: noExplore},
		{Name: "mean-not-median", Params: mean},
		{Name: "staleness-from-secondary", Params: secSource},
		{Name: "tight-ratio-band", Params: tightRatio},
		{Name: "delta-30pct", Params: bigDelta},
	}
}

// AblationResult is one variant's steady-state outcome.
type AblationResult struct {
	Name         string
	Throughput   float64
	P80          time.Duration
	PctSecondary float64
	GateTrips    int
	Explorations int
}

// RunAblation measures one controller variant on YCSB-B @ 180 clients.
func RunAblation(seed int64, v AblationVariant, stretch float64) AblationResult {
	f := nz(stretch)
	warm := time.Duration(f * float64(100*time.Second))
	runFor := time.Duration(f * float64(300*time.Second))
	params := v.Params
	if sp := scaledParams(stretch); sp.Period != params.Period {
		params.Period = sp.Period
	}
	opts := Options{Seed: seed, Cluster: ExpClusterConfig(), Params: params}
	setup := NewSetup(SysDecongestant, opts)
	spec := ycsb.WorkloadB()
	spec.RecordCount = YCSBRecordCount
	if err := ycsb.Load(setup.RS, spec, seed); err != nil {
		panic(err)
	}
	col := NewCollector(10*time.Second, "")
	pool := ycsb.NewPool(setup.Env, setup.Exec, col, spec)
	pool.SetClients(180)
	setup.Env.Run(runFor)
	thr, p80, pct := col.Aggregate(warm)
	st := setup.Core.Balancer.Stats()
	setup.Close()
	return AblationResult{
		Name:         v.Name,
		Throughput:   thr,
		P80:          p80,
		PctSecondary: pct,
		GateTrips:    st.GateTrips,
		Explorations: st.Explorations,
	}
}

// RunAllAblations measures every variant.
func RunAllAblations(seed int64, stretch float64) []AblationResult {
	var out []AblationResult
	for _, v := range AblationVariants() {
		out = append(out, RunAblation(seed, v, stretch))
	}
	return out
}
