package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/core"
	"decongestant/internal/obs"
	"decongestant/internal/sim"
	"decongestant/internal/workload/ycsb"
)

// The tests run heavily shortened versions of each experiment and
// check the qualitative claims the paper makes — who wins, where the
// controller settles, whether bounds hold — not absolute numbers.

func TestFig5ShapeAtSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sw := Fig5(1, []int{160}, 0.35)
	pt := sw.Points[0]
	dThr := pt.Values["Decongestant/throughput"]
	sThr := pt.Values["Secondary/throughput"]
	pThr := pt.Values["Primary/throughput"]
	if !(dThr > sThr && sThr > pThr) {
		t.Fatalf("ordering broken: D=%.0f S=%.0f P=%.0f", dThr, sThr, pThr)
	}
	if dThr < 1.05*sThr {
		t.Errorf("Decongestant %.0f not clearly above Secondary %.0f", dThr, sThr)
	}
	if dThr < 2.0*pThr {
		t.Errorf("Decongestant %.0f not ~2.5x Primary %.0f", dThr, pThr)
	}
	pct := pt.Values["Decongestant/pct_secondary"]
	if pct < 55 || pct > 90 {
		t.Errorf("secondary share %.1f%%, want ~70%%", pct)
	}
	if pt.Values["Primary/pct_secondary"] != 0 {
		t.Error("Primary baseline routed reads to secondaries")
	}
	if pt.Values["Secondary/pct_secondary"] != 100 {
		t.Error("Secondary baseline routed reads to the primary")
	}
}

func TestFig5LightLoadStaysNearPrimary(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sw := Fig5(1, []int{10}, 0.35)
	pct := sw.Points[0].Values["Decongestant/pct_secondary"]
	// At light load the balancer sits at (or explores around) LowBal.
	if pct > 30 {
		t.Errorf("light-load secondary share %.1f%%, want near 10%%", pct)
	}
}

func TestFig3ShapeAdaptsDownward(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Shortened Figure 3: heavy read phase then light phase. Downward
	// exploration moves 10 percentage points per 4 periods (40 s), so
	// walking from ~90% back to 10% takes ~5-6 minutes — give it that.
	phases := []ycsbPhase{
		{spec: ycsb.WorkloadB(), clients: 180, until: 120 * time.Second},
		{spec: ycsb.WorkloadA(), clients: 20, until: 560 * time.Second},
	}
	col, setup := runYCSB(SysDecongestant, 1, phases, false)
	defer setup.Close()
	rows := col.Rows()
	phase1 := avgPct(rows, 60*time.Second, 120*time.Second)
	mid2 := avgPct(rows, 260*time.Second, 320*time.Second)
	end2 := avgPct(rows, 500*time.Second, 560*time.Second)
	if phase1 < 50 {
		t.Errorf("heavy phase share %.1f%%, want high", phase1)
	}
	if end2 >= mid2 {
		t.Errorf("light phase share not decaying: %.1f%% then %.1f%%", mid2, end2)
	}
	if end2 > 30 {
		t.Errorf("light phase share %.1f%% at the end, want to fall toward 10%%", end2)
	}
}

func avgPct(rows []Row, from, to time.Duration) float64 {
	var sum float64
	n := 0
	for _, r := range rows {
		if r.Start >= from && r.Start < to {
			sum += r.PctSecondary
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func TestFig8EstimateIsConservative(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := Fig8(1, 0.3)
	if len(res.Estimate) == 0 || len(res.Observed) == 0 {
		t.Fatal("empty series")
	}
	// Per-second: the estimate must not sit far below what clients see.
	obs := map[int]float64{}
	for _, xy := range res.Observed {
		if xy.Y > obs[int(xy.X)] {
			obs[int(xy.X)] = xy.Y
		}
	}
	below := 0
	for _, e := range res.Estimate {
		if o, ok := obs[int(e.X)]; ok && e.Y+1.5 < o { // 1s granularity + probe skew
			below++
		}
	}
	if frac := float64(below) / float64(len(res.Estimate)); frac > 0.05 {
		t.Errorf("estimate below client-observed in %.1f%% of seconds", 100*frac)
	}
}

func TestFig9BoundMostlyHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := Fig9(1, 0.6)
	if res.SampleCount == 0 {
		t.Fatal("no S samples")
	}
	// The paper's claim: clients are protected even when the max
	// secondary staleness exceeds the bound. Allow the same small
	// slack the paper itself shows (reaction granularity is 1s).
	if frac := float64(res.ViolationCount) / float64(res.SampleCount); frac > 0.05 {
		t.Errorf("%.1f%% of client-observed samples above the 10s bound", 100*frac)
	}
}

func TestFig11SWorkloadIsLowImpact(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sw := Fig11(1, []int{120}, 0.35)
	with := sw.Points[0].Values["with_s/throughput"]
	without := sw.Points[0].Values["no_s/throughput"]
	if with == 0 || without == 0 {
		t.Fatal("missing series")
	}
	ratio := with / without
	if ratio < 0.92 || ratio > 1.08 {
		t.Errorf("S workload distorts throughput by %.1f%%", 100*(ratio-1))
	}
}

func TestTable1Rows(t *testing.T) {
	rows := Table1()
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	joined := strings.Join(rows, "\n")
	for _, want := range []string{"Stock Level", "50%", "45%", "43%"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Table1 missing %q:\n%s", want, joined)
		}
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	ts := &TimeSeries{
		Title:  "test",
		Window: 10 * time.Second,
		Rows: map[string][]Row{
			"Primary":      {{Start: 0, Throughput: 100, P80: time.Millisecond, PctSecondary: 0}},
			"Decongestant": {{Start: 0, Throughput: 150, P80: time.Millisecond, PctSecondary: 50}},
		},
		Events: []string{"switch at 10s"},
		Extra:  map[string][]XY{"gate": {{X: 5, Y: 1}}},
	}
	var buf bytes.Buffer
	RenderTimeSeries(&buf, ts)
	out := buf.String()
	for _, want := range []string{"test", "switch at 10s", "gate active", "150"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	buf.Reset()
	RenderSweep(&buf, &Sweep{Title: "sweepy", XLabel: "clients",
		Points: []SweepPoint{{X: 10, Values: map[string]float64{"a": 1}}}})
	if !strings.Contains(buf.String(), "sweepy") {
		t.Error("sweep render empty")
	}
	buf.Reset()
	RenderStaleness(&buf, &StalenessResult{Title: "stale", BoundSecs: 10,
		Estimate: []XY{{X: 1, Y: 2}}, Observed: []XY{{X: 1, Y: 1.5}}, SampleCount: 1})
	if !strings.Contains(buf.String(), "stale") || !strings.Contains(buf.String(), "bound: 10s") {
		t.Error("staleness render wrong")
	}
}

func TestSummarizeTimeSeries(t *testing.T) {
	ts := &TimeSeries{Rows: map[string][]Row{
		"X": {
			{Start: 0, Throughput: 100, PctSecondary: 10, P80: time.Millisecond},
			{Start: 10 * time.Second, Throughput: 200, PctSecondary: 20, P80: 2 * time.Millisecond},
			{Start: 20 * time.Second, Throughput: 300, PctSecondary: 30, P80: 3 * time.Millisecond},
		},
	}}
	sum := SummarizeTimeSeries(ts, 10*time.Second, 30*time.Second)
	if sum["X"].Throughput != 250 || sum["X"].PctSecondary != 25 {
		t.Fatalf("summary %+v", sum["X"])
	}
}

func TestAblationVariantsDistinct(t *testing.T) {
	vs := AblationVariants()
	if len(vs) < 6 {
		t.Fatalf("%d variants", len(vs))
	}
	seen := map[string]bool{}
	for _, v := range vs {
		if seen[v.Name] {
			t.Fatalf("duplicate variant %q", v.Name)
		}
		seen[v.Name] = true
	}
	if !vs[0].Params.NoRTTSubtraction == false {
		t.Fatal("paper variant must keep RTT subtraction")
	}
}

func TestAblationRunsQuickly(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := RunAblation(1, AblationVariant{Name: "paper", Params: core.DefaultParams()}, 0.2)
	if r.Throughput == 0 {
		t.Fatal("no throughput measured")
	}
}

func TestExpClusterConfigSane(t *testing.T) {
	cfg := ExpClusterConfig()
	if cfg.Nodes != 3 || cfg.CPUSlots == 0 || cfg.ReadCost == 0 {
		t.Fatalf("bad config: %+v", cfg)
	}
}

// TestSetupMetricsCoversAllLayers: after a short workload, the
// harness snapshot reports nonzero instruments from the cluster, the
// driver and the Read Balancer — all in one registry.
func TestSetupMetricsCoversAllLayers(t *testing.T) {
	params := core.DefaultParams()
	params.Period = 2 * time.Second
	s := NewSetup(SysDecongestant, Options{Seed: 1, Cluster: ExpClusterConfig(), Params: params})
	defer s.Close()
	for i := 0; i < 8; i++ {
		s.Env.Spawn("client", func(p sim.Proc) {
			for {
				s.Core.Router.Read(p, func(v cluster.ReadView) (any, error) {
					v.FindByID("kv", "k")
					return nil, nil
				})
			}
		})
	}
	s.Env.Run(30 * time.Second)
	snap := s.Metrics()
	for _, name := range []string{
		obs.Name("cluster.reads", "node", "0"),
		obs.Name("driver.selections", "pref", "primary"),
		"balancer.status_polls",
	} {
		if snap.CounterValue(name) == 0 {
			t.Errorf("%s is zero after workload", name)
		}
	}
	if reasons := sumReasonCounters(snap); reasons == 0 {
		t.Error("no balancer decisions counted")
	}
	if in, ok := snap.Get(obs.Name("cluster.cpu_queue_wait", "node", "0")); !ok || in.Hist == nil || in.Hist.Count == 0 {
		t.Error("queue-wait histogram empty")
	}
}

func sumReasonCounters(snap obs.Snapshot) uint64 {
	var total uint64
	for _, r := range []string{core.ReasonIncrease, core.ReasonDecrease, core.ReasonExplore, core.ReasonHold, core.ReasonGated} {
		total += snap.CounterValue(obs.Name("balancer.decisions", "reason", r))
	}
	return total
}
