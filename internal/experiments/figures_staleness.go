package experiments

import (
	"fmt"
	"time"

	"decongestant/internal/core"
	"decongestant/internal/sim"
	"decongestant/internal/workload/tpcc"
	"decongestant/internal/workload/ycsb"
)

// StalenessResult carries the two series the staleness figures plot:
// the Decongestant estimate (serverStatus-based, 1 Hz) and the
// client-observed staleness from the S workload.
type StalenessResult struct {
	Title string
	// Estimate is the max-secondary-staleness estimate over time (s).
	Estimate []XY
	// Observed is the S workload's client-observed staleness (s).
	Observed []XY
	// BoundSecs is the client-set staleness limit (0 = none plotted).
	BoundSecs int64
	// GatedSeconds counts seconds in which the Balance Fraction was 0.
	GatedSeconds int
	// ViolationCount counts observed samples above the bound.
	ViolationCount int
	// SampleCount is the total number of observed samples.
	SampleCount int
}

// runStalenessScenario runs Decongestant with the S workload attached
// and a 1 Hz sampler of the balancer's staleness estimate and gate.
func runStalenessScenario(seed int64, params core.Params, attach func(*Setup), runFor time.Duration, title string) *StalenessResult {
	opts := Options{Seed: seed, Cluster: ExpClusterConfig(), Params: params, AttachS: true}
	setup := NewSetup(SysDecongestant, opts)
	attach(setup)
	res := &StalenessResult{Title: title, BoundSecs: params.StaleBound}
	gated := 0
	sim.Every(setup.Env, "exp/stale-sampler", time.Second, func(p sim.Proc) {
		res.Estimate = append(res.Estimate, XY{X: p.Now().Seconds(), Y: float64(setup.Core.Balancer.MaxStaleness())})
		if setup.Core.Balancer.Gated() {
			gated++
		}
	})
	setup.Env.Run(runFor)
	for _, s := range setup.SW.Samples() {
		res.Observed = append(res.Observed, XY{X: s.At.Seconds(), Y: s.Staleness.Seconds()})
		res.SampleCount++
		if res.BoundSecs > 0 && s.Staleness > time.Duration(res.BoundSecs)*time.Second {
			res.ViolationCount++
		}
	}
	res.GatedSeconds = gated
	setup.Close()
	return res
}

// Fig8 reproduces Figure 8: the serverStatus-derived staleness
// estimate versus the staleness seen by clients, under YCSB-A with 100
// clients plus the S workload. The estimate should track the observed
// series from above (conservative).
func Fig8(seed int64, stretch float64) *StalenessResult {
	runFor := time.Duration(nz(stretch) * float64(500*time.Second))
	return runStalenessScenario(seed, core.DefaultParams(), func(setup *Setup) {
		spec := ycsb.WorkloadA()
		spec.RecordCount = YCSBRecordCount
		if err := ycsb.Load(setup.RS, spec, seed); err != nil {
			panic(fmt.Sprintf("experiments: ycsb load: %v", err))
		}
		pool := ycsb.NewPool(setup.Env, setup.Exec, nil, spec)
		pool.SetClients(100)
	}, runFor, "Figure 8: staleness estimate vs client-observed (YCSB-A, 100 clients)")
}

// Fig9 reproduces Figure 9: bound enforcement with the default 10 s
// limit under read-write TPC-C with 60 clients. The max secondary
// staleness sometimes exceeds the bound; the clients' observed
// staleness must not.
func Fig9(seed int64, stretch float64) *StalenessResult {
	runFor := time.Duration(nz(stretch) * float64(250*time.Second))
	params := core.DefaultParams() // StaleBound 10s
	return runStalenessScenario(seed, params, func(setup *Setup) {
		attachTPCC(setup, seed, 60)
	}, runFor, "Figure 9: bounding staleness at 10s (rw-TPC-C, 60 clients)")
}

// Fig10 reproduces Figure 10: the challenging 3-second bound under
// read-write TPC-C with 200 clients. Most observed samples stay within
// the bound; the paper itself reports two 4 s stragglers.
func Fig10(seed int64, stretch float64) *StalenessResult {
	runFor := time.Duration(nz(stretch) * float64(250*time.Second))
	params := core.DefaultParams()
	params.StaleBound = 3
	return runStalenessScenario(seed, params, func(setup *Setup) {
		attachTPCC(setup, seed, 200)
	}, runFor, "Figure 10: bounding staleness at 3s (rw-TPC-C, 200 clients)")
}

// attachTPCC loads the TPC-C population and starts a read-write-mix
// terminal pool on the setup.
func attachTPCC(setup *Setup, seed int64, clients int) {
	sc := ExpTPCCScale()
	if err := tpcc.Load(setup.RS, sc, seed); err != nil {
		panic(fmt.Sprintf("experiments: tpcc load: %v", err))
	}
	pool := tpcc.NewPool(setup.Env, setup.Exec, nil, sc, tpcc.ReadWriteMix())
	pool.SetClients(clients)
}
