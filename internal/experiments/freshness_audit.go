package experiments

import (
	"fmt"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/core"
	"decongestant/internal/driver"
	"decongestant/internal/obs"
	"decongestant/internal/obs/trace"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

// FreshnessArm is one arm of the freshness-audit experiment: the same
// laggy cluster and workload, read either through the Decongestant
// router (whose staleness gate enforces the bound) or through a naive
// fixed-secondary client that merely declares it.
type FreshnessArm struct {
	Name string
	// Violations is the freshness.bound_violations counter: audited
	// secondary reads whose observed staleness exceeded the 3 s bound.
	Violations uint64
	// Audited is the number of secondary-served reads the auditor saw.
	Audited uint64
	// HistMaxSecs is the maximum of the per-bound observed-staleness
	// histogram (freshness.observed_staleness_secs{bound="3"}).
	HistMaxSecs int64
	// TrueMaxLagSecs is the worst primary/secondary applied-OpTime gap
	// a 500 ms sampler saw over the run — the ground truth the audit
	// histogram must not exceed.
	TrueMaxLagSecs int64
	// GateTrips counts balancer gate closures (router arm only).
	GateTrips uint64
	// PinnedTraces are the trace ids pinned by bound violations, with
	// the span count retained for each — the exemplars an operator
	// would pull via /debug/trace?id=.
	PinnedTraces map[string]int
	// SecondaryReads counts reads served by a secondary.
	SecondaryReads int
	// Reads counts all reads issued.
	Reads int
}

// FreshnessAuditResult pairs the two arms.
type FreshnessAuditResult struct {
	Title     string
	BoundSecs int64
	Router    FreshnessArm
	Secondary FreshnessArm
}

// freshnessBound is the per-read staleness promise both arms declare.
const freshnessBound = 3

// freshnessClusterConfig builds the laggy replica set both arms share:
// secondaries pull the oplog only every 6 s (tail wake disabled), so
// with a steady writer their staleness sawtooths between 0 and ~6 s —
// straddling the 3 s bound from both sides.
func freshnessClusterConfig() cluster.Config {
	cfg := cluster.DefaultConfig()
	cfg.ReplIdlePoll = 6 * time.Second
	cfg.DisableTailWake = true
	cfg.CheckpointInterval = time.Hour
	cfg.NoopInterval = time.Hour
	return cfg
}

// RunFreshnessAudit runs the PR 7 freshness experiment: a replica set
// with injected sawtooth replication lag (0–6 s), a steady writer, and
// readers that promise a 3 s staleness bound on every read, audited
// end to end by the cluster's freshness auditor.
//
// The router arm reads through Decongestant: the balancer's
// conservative staleness gate (serverStatus polls) steers reads off
// secondaries whenever their estimated staleness exceeds the bound, so
// the audit records zero violations — the §4.1.2 guarantee holds even
// though the secondaries spend half of every pull cycle beyond the
// bound. The secondary arm reads through a fixed secondary preference
// that declares the same bound but enforces nothing: the audit flags
// every read served beyond 3 s, and pins the violating traces so their
// span trees survive ring eviction for post-hoc debugging.
func RunFreshnessAudit(seed int64, runFor time.Duration) *FreshnessAuditResult {
	if runFor <= 0 {
		runFor = 120 * time.Second
	}
	res := &FreshnessAuditResult{
		Title:     fmt.Sprintf("Freshness audit under 6s sawtooth lag, %ds bound", freshnessBound),
		BoundSecs: freshnessBound,
	}
	res.Router = runFreshnessArm(seed, runFor, true)
	res.Secondary = runFreshnessArm(seed, runFor, false)
	return res
}

func runFreshnessArm(seed int64, runFor time.Duration, routed bool) FreshnessArm {
	env := sim.NewEnv(seed)
	defer env.Shutdown()
	rs := cluster.New(env, freshnessClusterConfig())
	rs.Tracer().SetSampling(1) // every read carries a trace: exemplars and pins are attributable

	arm := FreshnessArm{Name: "secondary"}
	var sys *core.System
	var client *driver.Client
	if routed {
		arm.Name = "router"
		params := core.DefaultParams()
		params.StaleBound = freshnessBound
		params.StalenessPoll = 100 * time.Millisecond
		sys = core.NewSystem(env, driver.WrapCluster(rs), params)
		client = sys.Client
	} else {
		client = driver.NewClient(env, driver.WrapCluster(rs))
	}
	client.StartMonitor(env, 10*time.Second)

	// Steady writer: one insert per 250 ms keeps the primary's applied
	// OpTime advancing, so the frozen-between-pulls secondaries fall
	// behind by up to ~6 s before each refresh snaps them forward.
	env.Spawn("exp/freshness-writer", func(p sim.Proc) {
		for i := 0; ; i++ {
			if _, _, err := client.Write(p, func(tx cluster.WriteTxn) (any, error) {
				return nil, tx.Set("kv", fmt.Sprintf("w%03d", i%256), storage.D{"v": int64(i)})
			}); err != nil {
				return
			}
			p.Sleep(250 * time.Millisecond)
		}
	})

	// Ground-truth lag sampler, independent of the audit path. Lag is
	// whole seconds, so a 200 ms cadence sees every sustained value;
	// only a peak shorter than one sample period can escape it.
	primary := rs.PrimaryID()
	trueMax := new(int64)
	sim.Every(env, "exp/freshness-lag-sampler", 200*time.Millisecond, func(p sim.Proc) {
		for _, id := range rs.NodeIDs() {
			if id == primary {
				continue
			}
			if lag := rs.Primary().LastApplied().LagSeconds(rs.Node(id).LastApplied()); lag > *trueMax {
				*trueMax = lag
			}
		}
	})

	// Two readers, phase-shifted, each promising the bound per read.
	counts := struct{ reads, secondary int }{}
	read := func(p sim.Proc) {
		var pref driver.ReadPref
		var err error
		if routed {
			_, pref, _, err = sys.Router.Read(p, func(v cluster.ReadView) (any, error) {
				v.FindByID("kv", "w000")
				return nil, nil
			})
		} else {
			var node int
			_, node, _, err = client.Read(p,
				driver.ReadOptions{Pref: driver.Secondary, AuditBoundSecs: freshnessBound},
				func(v cluster.ReadView) (any, error) {
					v.FindByID("kv", "w000")
					return nil, nil
				})
			pref = driver.Primary
			if node != primary {
				pref = driver.Secondary
			}
		}
		if err != nil {
			return
		}
		counts.reads++
		if pref == driver.Secondary {
			counts.secondary++
		}
	}
	for i := 0; i < 2; i++ {
		offset := time.Duration(i) * 275 * time.Millisecond
		env.Spawn(fmt.Sprintf("exp/freshness-reader-%d", i), func(p sim.Proc) {
			p.Sleep(offset)
			for {
				read(p)
				p.Sleep(400 * time.Millisecond)
			}
		})
	}

	env.Run(runFor)

	snap := rs.Metrics().Snapshot()
	arm.Violations = snap.CounterValue("freshness.bound_violations")
	arm.TrueMaxLagSecs = *trueMax
	arm.Reads = counts.reads
	arm.SecondaryReads = counts.secondary
	arm.GateTrips = snap.CounterValue("balancer.gate_trips")
	hist := obs.Name("freshness.observed_staleness_secs", "bound",
		fmt.Sprintf("%d", freshnessBound))
	if inst, ok := snap.Get(hist); ok && inst.Hist != nil {
		arm.Audited = inst.Hist.Count
		arm.HistMaxSecs = int64(inst.Hist.Max) // ObserveN records whole seconds
	}
	arm.PinnedTraces = map[string]int{}
	for _, id := range rs.Tracer().Pinned() {
		arm.PinnedTraces[trace.IDString(id)] = len(rs.Tracer().TraceSpans(id))
	}
	return arm
}
