package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// RenderTimeSeries prints a TimeSeries as aligned per-window rows, one
// block of columns per system — the textual equivalent of the paper's
// three-panel time plots.
func RenderTimeSeries(w io.Writer, ts *TimeSeries) {
	fmt.Fprintf(w, "\n== %s ==\n", ts.Title)
	for _, ev := range ts.Events {
		fmt.Fprintf(w, "   event: %s\n", ev)
	}
	systems := make([]string, 0, len(ts.Rows))
	for name := range ts.Rows {
		systems = append(systems, name)
	}
	sort.Slice(systems, func(i, j int) bool {
		return systemOrder(systems[i]) < systemOrder(systems[j])
	})
	fmt.Fprintf(w, "%8s", "t(s)")
	for _, name := range systems {
		fmt.Fprintf(w, " | %28s", fmt.Sprintf("%s thr/s  p80(ms)  sec%%", abbrev(name)))
	}
	fmt.Fprintln(w)
	maxRows := 0
	for _, rows := range ts.Rows {
		if len(rows) > maxRows {
			maxRows = len(rows)
		}
	}
	for i := 0; i < maxRows; i++ {
		var start time.Duration
		for _, rows := range ts.Rows {
			if i < len(rows) {
				start = rows[i].Start
				break
			}
		}
		fmt.Fprintf(w, "%8.0f", start.Seconds())
		for _, name := range systems {
			rows := ts.Rows[name]
			if i < len(rows) {
				r := rows[i]
				fmt.Fprintf(w, " | %10.0f %8.1f %7.1f", r.Throughput,
					float64(r.P80)/float64(time.Millisecond), r.PctSecondary)
			} else {
				fmt.Fprintf(w, " | %28s", "")
			}
		}
		fmt.Fprintln(w)
	}
	if gate, ok := ts.Extra["gate"]; ok {
		var gatedAt []string
		for _, xy := range gate {
			if xy.Y > 0 {
				gatedAt = append(gatedAt, fmt.Sprintf("%.0fs", xy.X))
			}
		}
		if len(gatedAt) > 0 {
			fmt.Fprintf(w, "   staleness gate active (all reads to primary) at: %s\n",
				strings.Join(gatedAt, " "))
		}
	}
}

func systemOrder(name string) int {
	switch name {
	case "Primary":
		return 0
	case "Secondary":
		return 1
	default:
		return 2
	}
}

func abbrev(name string) string {
	switch name {
	case "Primary":
		return "P"
	case "Secondary":
		return "S"
	case "Decongestant":
		return "D"
	}
	return name
}

// RenderSweep prints a Sweep as one row per x value with all series as
// columns (sorted by name).
func RenderSweep(w io.Writer, sw *Sweep) {
	fmt.Fprintf(w, "\n== %s ==\n", sw.Title)
	keys := map[string]bool{}
	for _, pt := range sw.Points {
		for k := range pt.Values {
			keys[k] = true
		}
	}
	cols := make([]string, 0, len(keys))
	for k := range keys {
		cols = append(cols, k)
	}
	sort.Strings(cols)
	fmt.Fprintf(w, "%10s", sw.XLabel)
	for _, c := range cols {
		fmt.Fprintf(w, "  %26s", c)
	}
	fmt.Fprintln(w)
	for _, pt := range sw.Points {
		fmt.Fprintf(w, "%10.0f", pt.X)
		for _, c := range cols {
			fmt.Fprintf(w, "  %26.1f", pt.Values[c])
		}
		fmt.Fprintln(w)
	}
}

// RenderStaleness prints a StalenessResult: the estimate and observed
// series side by side on a shared per-second timeline, plus the bound
// summary.
func RenderStaleness(w io.Writer, res *StalenessResult) {
	fmt.Fprintf(w, "\n== %s ==\n", res.Title)
	if res.BoundSecs > 0 {
		fmt.Fprintf(w, "   client staleness bound: %ds\n", res.BoundSecs)
	}
	// Index observed samples to whole seconds (max per second).
	obs := map[int]float64{}
	for _, xy := range res.Observed {
		sec := int(xy.X)
		if xy.Y > obs[sec] {
			obs[sec] = xy.Y
		}
	}
	fmt.Fprintf(w, "%8s %14s %18s\n", "t(s)", "estimate(s)", "client-observed(s)")
	for _, xy := range res.Estimate {
		sec := int(xy.X)
		o, ok := obs[sec]
		if ok {
			fmt.Fprintf(w, "%8d %14.0f %18.2f\n", sec, xy.Y, o)
		} else {
			fmt.Fprintf(w, "%8d %14.0f %18s\n", sec, xy.Y, "-")
		}
	}
	fmt.Fprintf(w, "   samples=%d violations(above bound)=%d gated_seconds=%d\n",
		res.SampleCount, res.ViolationCount, res.GatedSeconds)
}

// SummarizeTimeSeries reduces a TimeSeries to per-system steady-state
// values over [from, to) — used by EXPERIMENTS.md and the benches.
func SummarizeTimeSeries(ts *TimeSeries, from, to time.Duration) map[string]Row {
	out := map[string]Row{}
	for name, rows := range ts.Rows {
		var thr, pct float64
		var p80 time.Duration
		n := 0
		for _, r := range rows {
			if r.Start < from || (to > 0 && r.Start >= to) {
				continue
			}
			thr += r.Throughput
			pct += r.PctSecondary
			if r.P80 > p80 {
				p80 = r.P80
			}
			n++
		}
		if n > 0 {
			out[name] = Row{Throughput: thr / float64(n), P80: p80, PctSecondary: pct / float64(n)}
		}
	}
	return out
}
