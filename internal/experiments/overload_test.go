package experiments

import (
	"testing"
	"time"
)

// TestOverloadGracefulDegradation drives the wire server at 10x its
// saturation point with admission control on and checks the three
// graceful-degradation properties: the excess is shed with retryable
// errors (no other failure mode), the latency of admitted requests
// stays bounded by the configured inflight ceiling rather than the
// offered load, and no goroutines are left behind.
func TestOverloadGracefulDegradation(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time overload run")
	}
	opts := DefaultOverloadOptions(10)
	res, err := RunOverload(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.String())

	if res.OK == 0 {
		t.Fatal("no requests succeeded under overload — server collapsed")
	}
	if res.Shed == 0 {
		t.Fatal("10x saturation never tripped the shed stage")
	}
	if res.OtherErrors != 0 {
		t.Fatalf("%d non-retryable errors under overload, want only clean sheds", res.OtherErrors)
	}
	// The shed ceiling admits at most ShedInflight requests, so an
	// admitted request waits behind a bounded queue: ceiling/saturation
	// service rounds. A generous multiple of that bound still catches
	// queueing that scales with offered load instead of the ceiling —
	// at 10x saturation an unbounded queue would push p99 past seconds.
	rounds := time.Duration(opts.Admission.ShedInflight/res.Saturation + 2)
	bound := 10 * rounds * opts.ReadCost
	if res.P99OK > bound {
		t.Fatalf("admitted p99 %s exceeds bound %s — latency tracks offered load, not the ceiling",
			res.P99OK, bound)
	}
	if res.GoroutineGrowth > 8 {
		t.Fatalf("goroutine growth %d after shutdown, want ~0", res.GoroutineGrowth)
	}
}
