package experiments

import (
	"testing"
	"time"
)

// TestFreshnessAuditGateVsNaive is the acceptance check for the PR 7
// freshness experiment: under identical 6 s sawtooth lag and a 3 s
// per-read bound, the Decongestant router's staleness gate yields zero
// audited violations, while the naive fixed-secondary client violates
// and retains the offending traces.
func TestFreshnessAuditGateVsNaive(t *testing.T) {
	res := RunFreshnessAudit(1, 120*time.Second)
	r, s := res.Router, res.Secondary
	t.Logf("router:    %+v", r)
	t.Logf("secondary: %+v", s)

	// Ground truth: the injected lag actually straddles the bound.
	for _, arm := range []FreshnessArm{r, s} {
		if arm.TrueMaxLagSecs <= res.BoundSecs {
			t.Fatalf("%s arm: true max lag %ds never exceeded the %ds bound — no lag injected",
				arm.Name, arm.TrueMaxLagSecs, res.BoundSecs)
		}
		if arm.Reads == 0 {
			t.Fatalf("%s arm issued no reads", arm.Name)
		}
		// The audit histogram records staleness of *served* reads: it
		// can never exceed the cluster's true worst lag (modulo one
		// second of measurement granularity — the audit observes at
		// read instants, the ground-truth sampler on a fixed cadence).
		if arm.HistMaxSecs > arm.TrueMaxLagSecs+1 {
			t.Fatalf("%s arm: audit histogram max %ds exceeds true max lag %ds",
				arm.Name, arm.HistMaxSecs, arm.TrueMaxLagSecs)
		}
	}

	// Gate on: the router still uses secondaries (when fresh) but the
	// audit finds no violations — every served secondary read stayed
	// within the bound even though the cluster's lag went far past it —
	// and the gate visibly tripped.
	if r.HistMaxSecs > res.BoundSecs {
		t.Fatalf("router arm served a secondary read at %ds observed staleness, beyond the %ds bound",
			r.HistMaxSecs, res.BoundSecs)
	}
	if r.Violations != 0 {
		t.Fatalf("router arm recorded %d bound violations, want 0 (pinned: %v)",
			r.Violations, r.PinnedTraces)
	}
	if r.SecondaryReads == 0 {
		t.Fatal("router arm never used a secondary — gate test is vacuous")
	}
	if r.GateTrips == 0 {
		t.Fatal("router arm: staleness gate never tripped under 6s sawtooth lag")
	}
	if len(r.PinnedTraces) != 0 {
		t.Fatalf("router arm pinned traces without violations: %v", r.PinnedTraces)
	}

	// Gate off: violations recorded, histogram saw beyond-bound
	// staleness, and each violating trace is pinned with spans intact.
	if s.Violations == 0 {
		t.Fatal("secondary arm recorded no violations under 6s lag with a 3s bound")
	}
	if s.HistMaxSecs <= res.BoundSecs {
		t.Fatalf("secondary arm histogram max %ds does not exceed the %ds bound",
			s.HistMaxSecs, res.BoundSecs)
	}
	// The naive arm's audit tracks the full injected lag (within the
	// one-second measurement granularity).
	if s.HistMaxSecs < s.TrueMaxLagSecs-1 {
		t.Fatalf("secondary arm histogram max %ds lags true max lag %ds — audit is under-observing",
			s.HistMaxSecs, s.TrueMaxLagSecs)
	}
	if len(s.PinnedTraces) == 0 {
		t.Fatal("secondary arm retained no pinned violating traces")
	}
	for id, spans := range s.PinnedTraces {
		if spans == 0 {
			t.Fatalf("pinned trace %s has no retained spans", id)
		}
	}
}
