package experiments

import (
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/obs"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
	"decongestant/internal/wire"
)

// Overload scenario: the admission-control counterpart of the paper's
// saturation sweeps. A real wire server runs over loopback TCP on a
// real-time environment, and a closed-loop client population sized at
// a multiple of the cluster's service capacity (nodes x CPU slots)
// hammers it. With admission control on, the server is expected to
// degrade gracefully: requests past the inflight ceiling are shed with
// a retryable error instead of queueing without bound, the latency of
// admitted requests stays bounded by the queue the ceiling permits,
// and the goroutine count returns to baseline afterwards — no
// collapse, no leak. The experiment reports exactly those three
// observables.

// OverloadOptions configures the overload run.
type OverloadOptions struct {
	Seed       int64
	Nodes      int
	CPUSlots   int
	ReadCost   time.Duration
	Multiplier int           // workers as a multiple of saturation (nodes x slots)
	Conns      int           // pipelined client connections shared by the workers
	Duration   time.Duration // closed-loop driving time
	Admission  wire.ServerConfig
	Docs       int
}

// DefaultOverloadOptions is the configuration the EXPERIMENTS.md
// scenario and the regression test use at multiplier m: a small
// cluster whose saturation point (12 concurrent ops) is far below the
// worker population, with the shed ceiling at 2x saturation.
func DefaultOverloadOptions(m int) OverloadOptions {
	nodes, slots := 3, 4
	sat := nodes * slots
	return OverloadOptions{
		Seed:       1,
		Nodes:      nodes,
		CPUSlots:   slots,
		ReadCost:   5 * time.Millisecond,
		Multiplier: m,
		Conns:      8,
		Duration:   2 * time.Second,
		Docs:       256,
		Admission: wire.ServerConfig{
			IdleTimeout:        2 * time.Second,
			MaxInflightPerConn: 4 * sat,
			ShedInflight:       2 * sat,
			SlowOpThreshold:    time.Second,
		},
	}
}

// OverloadResult summarizes one overload run.
type OverloadResult struct {
	Saturation int // nodes x CPU slots: concurrent ops the cluster services
	Workers    int // closed-loop clients driving the server

	Sent         int64
	OK           int64
	Shed         int64 // rejected with a retryable overload error
	OtherErrors  int64 // anything not OK and not a clean shed
	P50OK, P99OK time.Duration
	MaxOK        time.Duration

	// GoroutineGrowth is the post-shutdown goroutine count minus the
	// pre-start baseline: leaked handlers and dispatchers show up here.
	GoroutineGrowth int
}

// ShedFraction is the share of requests answered with the retryable
// overload error.
func (r OverloadResult) ShedFraction() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Sent)
}

func (r OverloadResult) String() string {
	return fmt.Sprintf(
		"overload: %d workers vs saturation %d | sent=%d ok=%d shed=%d (%.1f%%) other=%d | ok p50=%s p99=%s max=%s | goroutine growth=%+d",
		r.Workers, r.Saturation, r.Sent, r.OK, r.Shed, 100*r.ShedFraction(),
		r.OtherErrors, r.P50OK, r.P99OK, r.MaxOK, r.GoroutineGrowth)
}

// RunOverload drives the scenario and blocks until the server is torn
// back down. Unlike the virtual-time figures this runs in real time —
// admission control lives in the TCP layer, which the virtual
// environment does not model.
func RunOverload(opts OverloadOptions) (OverloadResult, error) {
	res := OverloadResult{Saturation: opts.Nodes * opts.CPUSlots}
	res.Workers = res.Saturation * opts.Multiplier

	runtime.GC()
	baseline := runtime.NumGoroutine()

	env := sim.NewRealtimeEnv(opts.Seed)
	cfg := cluster.DefaultConfig()
	cfg.Nodes = opts.Nodes
	cfg.CPUSlots = opts.CPUSlots
	cfg.ReadCost = opts.ReadCost
	cfg.WriteCost = 2 * opts.ReadCost
	cfg.CostJitter = -1
	cfg.CheckpointInterval = time.Hour
	cfg.NoopInterval = time.Hour
	rs := cluster.New(env, cfg)
	err := rs.Bootstrap(func(s *storage.Store) error {
		c := s.C("overload")
		for i := 0; i < opts.Docs; i++ {
			if err := c.Insert(storage.D{"_id": overloadKey(i), "v": int64(i)}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	srv := wire.NewServerWith(env, rs, nil, opts.Admission)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	go srv.Serve(ln)
	addr := ln.Addr().String()

	clients := make([]*wire.Client, opts.Conns)
	for i := range clients {
		if clients[i], err = wire.Dial(addr); err != nil {
			srv.Close()
			env.Shutdown()
			return res, err
		}
	}

	reg := obs.NewRegistry()
	okLat := reg.Histogram("overload.ok_latency")
	var sent, ok, shed, other atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < res.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed + int64(w)))
			cl := clients[w%len(clients)]
			for {
				select {
				case <-stop:
					return
				default:
				}
				node := rng.Intn(opts.Nodes)
				id := overloadKey(rng.Intn(opts.Docs))
				start := time.Now()
				_, err := cl.ExecRead(nil, node, func(v cluster.ReadView) (any, error) {
					v.FindByID("overload", id)
					return nil, nil
				})
				sent.Add(1)
				switch {
				case err == nil:
					ok.Add(1)
					okLat.Observe(time.Since(start))
				case wire.IsRetryable(err):
					shed.Add(1)
				default:
					other.Add(1)
				}
			}
		}(w)
	}
	time.Sleep(opts.Duration)
	close(stop)
	wg.Wait()
	for _, cl := range clients {
		cl.Close()
	}
	srv.Close()
	env.Shutdown()

	// Let reaped connections and dispatchers unwind before measuring
	// the goroutine balance.
	deadline := time.Now().Add(5 * time.Second)
	growth := 0
	for {
		runtime.GC()
		growth = runtime.NumGoroutine() - baseline
		if growth <= 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	res.GoroutineGrowth = growth

	res.Sent, res.OK, res.Shed, res.OtherErrors = sent.Load(), ok.Load(), shed.Load(), other.Load()
	st := okLat.Stats()
	res.P50OK, res.P99OK, res.MaxOK = st.P50, st.P99, st.Max
	return res, nil
}

func overloadKey(i int) string { return fmt.Sprintf("doc%04d", i) }
