// Package experiments reproduces every table and figure of the paper's
// evaluation (§4) on the simulated replica set: the three systems
// compared are the two hard-coded baselines (Primary, Secondary) and
// Decongestant. Each FigN function builds the cluster, loads the
// workload, runs the scenario in virtual time, and returns structured
// rows matching what the paper plots.
package experiments

import (
	"fmt"
	"sync"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/core"
	"decongestant/internal/driver"
	"decongestant/internal/metrics"
	"decongestant/internal/obs"
	"decongestant/internal/sim"
	"decongestant/internal/workload"
	"decongestant/internal/workload/sworkload"
)

// SystemKind selects which of the paper's three systems runs.
type SystemKind int

const (
	// SysPrimary hard-codes Read Preference primary (baseline).
	SysPrimary SystemKind = iota
	// SysSecondary hard-codes Read Preference secondary (baseline).
	SysSecondary
	// SysDecongestant runs the Read Balancer + Router.
	SysDecongestant
)

func (k SystemKind) String() string {
	switch k {
	case SysPrimary:
		return "Primary"
	case SysSecondary:
		return "Secondary"
	default:
		return "Decongestant"
	}
}

// AllSystems lists the systems in the order the figures present them.
var AllSystems = []SystemKind{SysPrimary, SysSecondary, SysDecongestant}

// ExpClusterConfig is the cluster calibration shared by all
// experiments: a 3-node, equal-capacity replica set whose closed-loop
// saturation knee sits in the few-tens-of-clients range, like the
// paper's r4.2xlarge nodes do under its client counts.
func ExpClusterConfig() cluster.Config {
	cfg := cluster.DefaultConfig()
	cfg.CPUSlots = 24
	cfg.ReadCost = 3 * time.Millisecond
	cfg.WriteCost = 7 * time.Millisecond
	cfg.ApplyCost = 150 * time.Microsecond
	cfg.GetMoreCost = 1 * time.Millisecond
	cfg.StatusCost = 500 * time.Microsecond
	cfg.CheckpointInterval = 60 * time.Second
	cfg.CheckpointMinDuration = time.Second
	cfg.CheckpointPerMB = 250 * time.Millisecond
	cfg.CheckpointMaxDuration = 30 * time.Second
	cfg.FlowControlLagSecs = 15
	cfg.FlowControlDelay = 3 * time.Millisecond
	cfg.OplogCap = 200_000 // bounds per-node memory on long runs
	return cfg
}

// Setup is one assembled system under test.
type Setup struct {
	Env    *sim.VirtualEnv
	RS     *cluster.ReplicaSet
	Client *driver.Client
	Exec   workload.Executor
	Core   *core.System // nil for the baselines
	SW     *sworkload.S // nil unless attached
}

// Options configure a setup.
type Options struct {
	Seed       int64
	Cluster    cluster.Config
	Params     core.Params // Decongestant parameters
	AttachS    bool
	SWOpts     sworkload.Options
	CustomCore func(*core.System) // post-construction hook
}

// NewSetup builds a cluster and the chosen system over it.
func NewSetup(kind SystemKind, opts Options) *Setup {
	env := sim.NewEnv(opts.Seed)
	rs := cluster.New(env, opts.Cluster)
	conn := driver.WrapCluster(rs)
	s := &Setup{Env: env, RS: rs}
	switch kind {
	case SysPrimary, SysSecondary:
		// Baselines run without any Read Balancer or its probing
		// overheads (§4.1.3).
		s.Client = driver.NewClient(env, conn)
		pref := driver.Primary
		if kind == SysSecondary {
			pref = driver.Secondary
		}
		s.Client.StartMonitor(env, 10*time.Second)
		s.Exec = workload.FixedPref{Client: s.Client, Pref: pref}
	case SysDecongestant:
		s.Core = core.NewSystem(env, conn, opts.Params)
		if opts.CustomCore != nil {
			opts.CustomCore(s.Core)
		}
		s.Client = s.Core.Client
		s.Client.StartMonitor(env, 10*time.Second)
		s.Exec = workload.RouterExec{Router: s.Core.Router}
	}
	if opts.AttachS {
		swOpts := opts.SWOpts
		if kind == SysDecongestant && swOpts.ProbeSecondary == nil {
			bal := s.Core.Balancer
			swOpts.ProbeSecondary = func() bool { return bal.Fraction() > 0 }
		}
		if kind == SysPrimary && swOpts.ProbeSecondary == nil {
			// The paper's variation: when the application never uses
			// secondaries, the S probe's second read also goes to the
			// primary.
			swOpts.ProbeSecondary = func() bool { return false }
		}
		s.SW = sworkload.New(env, s.Client, swOpts)
		s.SW.Start()
	}
	return s
}

// Close shuts the environment down.
func (s *Setup) Close() { s.Env.Shutdown() }

// Metrics returns the observability snapshot for the whole system
// under test. In-process the driver and Read Balancer register their
// instruments in the cluster's registry, so one snapshot covers every
// layer: cluster.*, driver.* and balancer.*.
func (s *Setup) Metrics() obs.Snapshot { return s.RS.Metrics().Snapshot() }

// Collector implements workload.Observer, bucketing reads (optionally
// filtered to one kind, e.g. StockLevel) into fixed windows with
// throughput, latency percentiles and the measured percentage of
// secondary-routed reads — the three panels of Figures 2-5.
type Collector struct {
	window    time.Duration
	kindMatch string // "" matches every read kind

	mu        sync.Mutex
	reads     *metrics.Series
	writes    *metrics.Series
	secPerWin []int64
	totPerWin []int64
}

// NewCollector creates a collector with the given window width. If
// kind is non-empty only reads of that kind are counted.
func NewCollector(window time.Duration, kind string) *Collector {
	return &Collector{
		window:    window,
		kindMatch: kind,
		reads:     metrics.NewSeries(window),
		writes:    metrics.NewSeries(window),
	}
}

// ObserveRead implements workload.Observer.
func (c *Collector) ObserveRead(at time.Duration, pref driver.ReadPref, lat time.Duration, kind string) {
	if c.kindMatch != "" && kind != c.kindMatch {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reads.Observe(at, lat)
	idx := int(at / c.window)
	for len(c.totPerWin) <= idx {
		c.totPerWin = append(c.totPerWin, 0)
		c.secPerWin = append(c.secPerWin, 0)
	}
	c.totPerWin[idx]++
	if pref == driver.Secondary {
		c.secPerWin[idx]++
	}
}

// ObserveWrite implements workload.Observer.
func (c *Collector) ObserveWrite(at time.Duration, lat time.Duration, kind string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.writes.Observe(at, lat)
}

// Row is one reporting window of one system's read metrics.
type Row struct {
	Start        time.Duration
	Throughput   float64 // reads per second
	P80          time.Duration
	PctSecondary float64 // measured percentage of secondary reads
}

// Rows returns one Row per window.
func (c *Collector) Rows() []Row {
	c.mu.Lock()
	defer c.mu.Unlock()
	snaps := c.reads.Snapshot()
	rows := make([]Row, len(snaps))
	for i, w := range snaps {
		r := Row{Start: w.Start, Throughput: w.Throughput, P80: w.P80}
		if i < len(c.totPerWin) && c.totPerWin[i] > 0 {
			r.PctSecondary = 100 * float64(c.secPerWin[i]) / float64(c.totPerWin[i])
		}
		rows[i] = r
	}
	return rows
}

// Aggregate summarizes all windows starting at or after `from` —
// steady-state numbers with the warm-up excluded (§4.1.6).
func (c *Collector) Aggregate(from time.Duration) (throughput float64, p80 time.Duration, pctSecondary float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	agg := c.reads.Aggregate(from)
	var windows int
	var sec, tot int64
	for i := range c.totPerWin {
		if time.Duration(i)*c.window < from {
			continue
		}
		windows++
		sec += c.secPerWin[i]
		tot += c.totPerWin[i]
	}
	if windows > 0 {
		throughput = float64(agg.Count()) / (float64(windows) * c.window.Seconds())
	}
	p80 = agg.Percentile(0.80)
	if tot > 0 {
		pctSecondary = 100 * float64(sec) / float64(tot)
	}
	return throughput, p80, pctSecondary
}

// TimeSeries is the result of a time-varying experiment: per-system
// windowed rows plus annotations.
type TimeSeries struct {
	Title  string
	Window time.Duration
	Rows   map[string][]Row
	Events []string
	// Extra carries per-system auxiliary series (staleness, gate
	// trips) keyed by a label.
	Extra map[string][]XY
}

// XY is one point of an auxiliary series.
type XY struct {
	X float64
	Y float64
}

// SweepPoint is one x-axis position of a sweep experiment.
type SweepPoint struct {
	X      float64 // e.g. number of clients
	Values map[string]float64
}

// Sweep is the result of a parameter sweep: multiple named series over
// a shared x axis.
type Sweep struct {
	Title  string
	XLabel string
	Points []SweepPoint
}

// fmtDur prints a duration in milliseconds for table output.
func fmtDur(d time.Duration) string { return metrics.FormatDuration(d) }

var _ = fmt.Sprintf
