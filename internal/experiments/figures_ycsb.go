package experiments

import (
	"fmt"
	"time"

	"decongestant/internal/core"
	"decongestant/internal/sim"
	"decongestant/internal/workload/ycsb"
)

// ycsbPhase is one stretch of a dynamic YCSB scenario.
type ycsbPhase struct {
	spec    ycsb.Spec
	clients int
	until   time.Duration
}

// YCSBRecordCount is the population shared by the YCSB experiments.
const YCSBRecordCount = 10_000

// runYCSB executes a phased YCSB scenario against one system and
// returns the collector and setup (callers Close the setup).
func runYCSB(kind SystemKind, seed int64, phases []ycsbPhase, withS bool) (*Collector, *Setup) {
	return runYCSBParams(kind, seed, phases, withS, core.DefaultParams())
}

// runYCSBParams is runYCSB with explicit Read Balancer parameters.
func runYCSBParams(kind SystemKind, seed int64, phases []ycsbPhase, withS bool, params core.Params) (*Collector, *Setup) {
	opts := Options{
		Seed:    seed,
		Cluster: ExpClusterConfig(),
		Params:  params,
		AttachS: withS,
	}
	setup := NewSetup(kind, opts)
	spec := phases[0].spec
	spec.RecordCount = YCSBRecordCount
	if err := ycsb.Load(setup.RS, spec, seed); err != nil {
		panic(fmt.Sprintf("experiments: ycsb load: %v", err))
	}
	col := NewCollector(10*time.Second, "")
	pool := ycsb.NewPool(setup.Env, setup.Exec, col, spec)
	for _, ph := range phases {
		s := ph.spec
		s.RecordCount = YCSBRecordCount
		pool.SetSpec(s)
		pool.SetClients(ph.clients)
		setup.Env.Run(ph.until)
	}
	return col, setup
}

// scalePhases multiplies every phase boundary by stretch (for quick
// test/bench runs; 1.0 reproduces the paper's timeline).
func scalePhases(phases []ycsbPhase, stretch float64) []ycsbPhase {
	if stretch == 0 || stretch == 1 {
		return phases
	}
	out := make([]ycsbPhase, len(phases))
	for i, ph := range phases {
		ph.until = time.Duration(float64(ph.until) * stretch)
		out[i] = ph
	}
	return out
}

// Fig2 reproduces Figure 2: YCSB-A with 180 clients switching to
// YCSB-B at t=620s (run to 900s), S workload alongside. Per-10s read
// throughput, P80 latency, and measured percentage of secondary reads
// for the three systems.
func Fig2(seed int64, stretch float64) *TimeSeries {
	phases := scalePhases([]ycsbPhase{
		{spec: ycsb.WorkloadA(), clients: 180, until: 620 * time.Second},
		{spec: ycsb.WorkloadB(), clients: 180, until: 900 * time.Second},
	}, stretch)
	ts := &TimeSeries{
		Title:  "Figure 2: YCSB-A(180) -> YCSB-B(180) at t=" + phases[0].until.String(),
		Window: 10 * time.Second,
		Rows:   map[string][]Row{},
		Events: []string{fmt.Sprintf("workload switches A->B at %s", phases[0].until)},
	}
	for _, kind := range AllSystems {
		col, setup := runYCSBParams(kind, seed, phases, true, scaledParams(stretch))
		ts.Rows[kind.String()] = col.Rows()
		setup.Close()
	}
	return ts
}

// Fig3 reproduces Figure 3: YCSB-B with 180 clients dropping to
// YCSB-A with 20 clients at t=230s (run to 700s).
func Fig3(seed int64, stretch float64) *TimeSeries {
	phases := scalePhases([]ycsbPhase{
		{spec: ycsb.WorkloadB(), clients: 180, until: 230 * time.Second},
		{spec: ycsb.WorkloadA(), clients: 20, until: 700 * time.Second},
	}, stretch)
	ts := &TimeSeries{
		Title:  "Figure 3: YCSB-B(180) -> YCSB-A(20) at t=" + phases[0].until.String(),
		Window: 10 * time.Second,
		Rows:   map[string][]Row{},
		Events: []string{fmt.Sprintf("workload switches B(180)->A(20) at %s", phases[0].until)},
	}
	for _, kind := range AllSystems {
		col, setup := runYCSBParams(kind, seed, phases, true, scaledParams(stretch))
		ts.Rows[kind.String()] = col.Rows()
		setup.Close()
	}
	return ts
}

// Fig5 reproduces Figure 5: YCSB-B sweep over the number of clients;
// steady-state read throughput, P80 latency and measured percentage of
// secondary reads, with the first 100 s excluded as warm-up.
func Fig5(seed int64, clients []int, stretch float64) *Sweep {
	if len(clients) == 0 {
		clients = []int{10, 20, 40, 60, 80, 100, 120, 140, 160, 180, 200}
	}
	warm := time.Duration(float64(100*time.Second) * nz(stretch))
	runFor := time.Duration(float64(220*time.Second) * nz(stretch))
	sw := &Sweep{Title: "Figure 5: YCSB-B client sweep", XLabel: "clients"}
	for _, n := range clients {
		pt := SweepPoint{X: float64(n), Values: map[string]float64{}}
		for _, kind := range AllSystems {
			col, setup := runYCSBParams(kind, seed, []ycsbPhase{
				{spec: ycsb.WorkloadB(), clients: n, until: runFor},
			}, false, scaledParams(stretch))
			thr, p80, pct := col.Aggregate(warm)
			setup.Close()
			pt.Values[kind.String()+"/throughput"] = thr
			pt.Values[kind.String()+"/p80_ms"] = float64(p80) / float64(time.Millisecond)
			pt.Values[kind.String()+"/pct_secondary"] = pct
		}
		sw.Points = append(sw.Points, pt)
	}
	return sw
}

// Fig6 reproduces Figure 6: the YCSB-A trade-off between performance
// and 80-percentile client-observed data staleness at 20, 100 and 180
// clients. Staleness comes from the S workload run alongside.
func Fig6(seed int64, clients []int, stretch float64) *Sweep {
	if len(clients) == 0 {
		clients = []int{20, 100, 180}
	}
	warm := time.Duration(float64(100*time.Second) * nz(stretch))
	runFor := time.Duration(float64(300*time.Second) * nz(stretch))
	sw := &Sweep{Title: "Figure 6: YCSB-A performance vs staleness trade-off", XLabel: "clients"}
	for _, n := range clients {
		pt := SweepPoint{X: float64(n), Values: map[string]float64{}}
		for _, kind := range AllSystems {
			col, setup := runYCSBParams(kind, seed, []ycsbPhase{
				{spec: ycsb.WorkloadA(), clients: n, until: runFor},
			}, true, scaledParams(stretch))
			thr, p80, _ := col.Aggregate(warm)
			stale := setup.SW.StalenessPercentile(0.80, warm)
			setup.Close()
			pt.Values[kind.String()+"/throughput"] = thr
			pt.Values[kind.String()+"/p80_ms"] = float64(p80) / float64(time.Millisecond)
			pt.Values[kind.String()+"/p80_staleness_s"] = stale.Seconds()
		}
		sw.Points = append(sw.Points, pt)
	}
	return sw
}

// nz treats a zero stretch as 1.
func nz(stretch float64) float64 {
	if stretch == 0 {
		return 1
	}
	return stretch
}

// scaledParams compresses the Read Balancer's decision period in
// proportion to a shortened timeline (floor 2 s), so stretch<1 runs
// converge like compressed full-length runs. At stretch>=1 it returns
// the paper's parameters unchanged.
func scaledParams(stretch float64) core.Params {
	p := core.DefaultParams()
	f := nz(stretch)
	if f < 1 {
		period := time.Duration(f * float64(p.Period))
		if period < 2*time.Second {
			period = 2 * time.Second
		}
		p.Period = period
	}
	return p
}

// sampleStaleness spawns a 1 Hz sampler recording the Decongestant
// staleness estimate, returning a closure to retrieve the series.
func sampleStaleness(env *sim.VirtualEnv, sys *core.System) func() []XY {
	var series []XY
	sim.Every(env, "exp/staleness-sampler", time.Second, func(p sim.Proc) {
		series = append(series, XY{X: p.Now().Seconds(), Y: float64(sys.Balancer.MaxStaleness())})
	})
	return func() []XY { return series }
}
