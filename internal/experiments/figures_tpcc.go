package experiments

import (
	"fmt"
	"time"

	"decongestant/internal/core"
	"decongestant/internal/sim"
	"decongestant/internal/workload/tpcc"
)

// tpccPhase is one stretch of a dynamic TPC-C scenario.
type tpccPhase struct {
	clients int
	until   time.Duration
}

// ExpTPCCScale returns the TPC-C population used by the experiments.
func ExpTPCCScale() tpcc.Scale { return tpcc.DefaultScale() }

// runTPCC executes a phased read-write TPC-C scenario against one
// system; the collector is filtered to Stock Level transactions, which
// is what the paper's TPC-C figures report.
func runTPCC(kind SystemKind, seed int64, phases []tpccPhase, withS bool, window time.Duration, params core.Params) (*Collector, *Setup) {
	opts := Options{
		Seed:    seed,
		Cluster: ExpClusterConfig(),
		Params:  params,
		AttachS: withS,
	}
	setup := NewSetup(kind, opts)
	sc := ExpTPCCScale()
	if err := tpcc.Load(setup.RS, sc, seed); err != nil {
		panic(fmt.Sprintf("experiments: tpcc load: %v", err))
	}
	col := NewCollector(window, tpcc.KindStockLevel)
	pool := tpcc.NewPool(setup.Env, setup.Exec, col, sc, tpcc.ReadWriteMix())
	for _, ph := range phases {
		pool.SetClients(ph.clients)
		setup.Env.Run(ph.until)
	}
	return col, setup
}

// Fig4 reproduces Figure 4: read-write TPC-C with the client count
// bursting 20 -> 200 at minute 5 and back to 20 at minute 10 (15
// minutes total). Stock Level throughput and P80 latency are reported
// per minute, the measured secondary percentage per 10 seconds, and
// the seconds in which Decongestant's staleness gate forced all reads
// to the primary are listed (the pink lines).
func Fig4(seed int64, stretch float64) *TimeSeries {
	f := nz(stretch)
	phases := []tpccPhase{
		{clients: 20, until: time.Duration(f * float64(5*time.Minute))},
		{clients: 200, until: time.Duration(f * float64(10*time.Minute))},
		{clients: 20, until: time.Duration(f * float64(15*time.Minute))},
	}
	window := time.Duration(f * float64(time.Minute))
	ts := &TimeSeries{
		Title:  "Figure 4: read-write TPC-C, clients 20 -> 200 -> 20",
		Window: window,
		Rows:   map[string][]Row{},
		Events: []string{
			fmt.Sprintf("clients 20->200 at %s", phases[0].until),
			fmt.Sprintf("clients 200->20 at %s", phases[1].until),
		},
		Extra: map[string][]XY{},
	}
	for _, kind := range AllSystems {
		var gateSamples []XY
		col, setup := runTPCC(kind, seed, phases, true, window, scaledParams(stretch))
		if kind == SysDecongestant {
			// Recover gate activity from the staleness poller's
			// decision trail: the balancer exposes trips via stats and
			// the published fraction; sample the S workload's view too.
			for _, d := range setup.Core.Balancer.Decisions() {
				y := 0.0
				if d.Gated {
					y = 1.0
				}
				gateSamples = append(gateSamples, XY{X: d.At.Seconds(), Y: y})
			}
			ts.Extra["gate"] = gateSamples
			ts.Extra["staleness_estimate"] = stalenessFromSamples(setup)
		}
		ts.Rows[kind.String()] = col.Rows()
		setup.Close()
	}
	return ts
}

func stalenessFromSamples(setup *Setup) []XY {
	if setup.SW == nil {
		return nil
	}
	var out []XY
	for _, s := range setup.SW.Samples() {
		out = append(out, XY{X: s.At.Seconds(), Y: s.Staleness.Seconds()})
	}
	return out
}

// Fig7 reproduces Figure 7: the Stock Level performance vs staleness
// trade-off for read-write TPC-C at 20, 100 and 180 clients.
func Fig7(seed int64, clients []int, stretch float64) *Sweep {
	if len(clients) == 0 {
		clients = []int{20, 100, 180}
	}
	f := nz(stretch)
	warm := time.Duration(f * float64(100*time.Second))
	runFor := time.Duration(f * float64(300*time.Second))
	sw := &Sweep{Title: "Figure 7: read-write TPC-C Stock Level vs staleness trade-off", XLabel: "clients"}
	for _, n := range clients {
		pt := SweepPoint{X: float64(n), Values: map[string]float64{}}
		for _, kind := range AllSystems {
			col, setup := runTPCC(kind, seed, []tpccPhase{{clients: n, until: runFor}}, true, 10*time.Second, scaledParams(stretch))
			thr, p80, _ := col.Aggregate(warm)
			stale := setup.SW.StalenessPercentile(0.80, warm)
			setup.Close()
			pt.Values[kind.String()+"/throughput"] = thr
			pt.Values[kind.String()+"/p80_ms"] = float64(p80) / float64(time.Millisecond)
			pt.Values[kind.String()+"/p80_staleness_s"] = stale.Seconds()
		}
		sw.Points = append(sw.Points, pt)
	}
	return sw
}

// Fig11 reproduces Figure 11: the impact of running the S workload
// alongside read-write TPC-C (Read Preference Primary) on Stock Level
// throughput, across client counts. The two curves should overlap.
func Fig11(seed int64, clients []int, stretch float64) *Sweep {
	if len(clients) == 0 {
		clients = []int{20, 60, 100, 140, 200}
	}
	f := nz(stretch)
	warm := time.Duration(f * float64(100*time.Second))
	runFor := time.Duration(f * float64(250*time.Second))
	sw := &Sweep{Title: "Figure 11: Stock Level throughput with vs without S workload (Primary)", XLabel: "clients"}
	for _, n := range clients {
		pt := SweepPoint{X: float64(n), Values: map[string]float64{}}
		for _, withS := range []bool{true, false} {
			col, setup := runTPCC(SysPrimary, seed, []tpccPhase{{clients: n, until: runFor}}, withS, 10*time.Second, core.DefaultParams())
			thr, _, _ := col.Aggregate(warm)
			setup.Close()
			label := "no_s"
			if withS {
				label = "with_s"
			}
			pt.Values[label+"/throughput"] = thr
		}
		sw.Points = append(sw.Points, pt)
	}
	return sw
}

// Table1 returns the transaction mixes of Table 1 as printable rows.
func Table1() []string {
	std, rw := tpcc.StandardMix(), tpcc.ReadWriteMix()
	return []string{
		"Transaction    TPC-C   Read-Write TPC-C",
		fmt.Sprintf("Stock Level    %3d%%    %3d%%", std.StockLevel, rw.StockLevel),
		fmt.Sprintf("Delivery       %3d%%    %3d%%", std.Delivery, rw.Delivery),
		fmt.Sprintf("Order Status   %3d%%    %3d%%", std.OrderStatus, rw.OrderStatus),
		fmt.Sprintf("Payment        %3d%%    %3d%%", std.Payment, rw.Payment),
		fmt.Sprintf("New Order      %3d%%    %3d%%", std.NewOrder, rw.NewOrder),
	}
}

var _ sim.Proc // keep sim imported for samplers added below
