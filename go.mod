module decongestant

go 1.22
