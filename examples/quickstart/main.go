// Quickstart: build a simulated 3-node replica set, put Decongestant
// in front of it, and watch the Balance Fraction react as 150
// closed-loop clients congest the primary.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/core"
	"decongestant/internal/driver"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

func main() {
	// A deterministic virtual-time environment: the whole demo takes
	// milliseconds of wall time.
	env := sim.NewEnv(42)
	defer env.Shutdown()

	// A MongoDB-like replica set: primary + 2 secondaries, oplog
	// replication, heartbeats, checkpoints.
	rs := cluster.New(env, cluster.DefaultConfig())

	// Preload one hot document on every node (as if restored from a
	// snapshot).
	err := rs.Bootstrap(func(s *storage.Store) error {
		return s.C("kv").Insert(storage.D{"_id": "hot", "v": 0})
	})
	if err != nil {
		panic(err)
	}

	// Decongestant: driver session + Read Balancer + Router, with the
	// paper's parameters (10% initial fraction, 10s staleness bound).
	sys := core.NewSystem(env, driver.WrapCluster(rs), core.DefaultParams())

	// 150 closed-loop readers, each routed through the Router's biased
	// coin. The primary saturates; the Balancer shifts reads away.
	for i := 0; i < 150; i++ {
		env.Spawn("client", func(p sim.Proc) {
			for {
				sys.Router.Read(p, func(v cluster.ReadView) (any, error) {
					d, _ := v.FindByID("kv", "hot")
					return d.Int("v"), nil
				})
			}
		})
	}
	// One writer keeps the oplog moving.
	env.Spawn("writer", func(p sim.Proc) {
		for i := 0; ; i++ {
			sys.Router.Write(p, func(tx cluster.WriteTxn) (any, error) {
				return nil, tx.Set("kv", "hot", storage.D{"v": i})
			})
			p.Sleep(50 * time.Millisecond)
		}
	})

	fmt.Println("t(s)  balance%  secondary-share%  max-staleness(s)")
	var lastPrim, lastSec int64
	for t := 10 * time.Second; t <= 120*time.Second; t += 10 * time.Second {
		env.Run(t)
		prim, sec := sys.Router.Counts(false)
		dPrim, dSec := prim-lastPrim, sec-lastSec
		lastPrim, lastSec = prim, sec
		share := 0.0
		if dPrim+dSec > 0 {
			share = 100 * float64(dSec) / float64(dPrim+dSec)
		}
		fmt.Printf("%4.0f  %7d%%  %16.1f  %16d\n",
			t.Seconds(), sys.Balancer.FractionPct(), share, sys.Balancer.MaxStaleness())
	}
	fmt.Println("\nDecongestant shifted reads to the secondaries as the primary congested.")
}
