// Sharded cluster: §2.2 of the paper notes that Decongestant's
// techniques apply to sharded clusters, which expose the same Read
// Preference API per shard. This example runs a 2-shard deployment
// with an independent Read Balancer per shard, hammers keys on one
// shard only, and shows that only the hot shard's Balance Fraction
// climbs.
//
//	go run ./examples/shardedcluster
package main

import (
	"fmt"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/core"
	"decongestant/internal/sharding"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
)

func main() {
	env := sim.NewEnv(99)
	defer env.Shutdown()

	cfg := cluster.DefaultConfig()
	cfg.CPUSlots = 8
	cfg.ReadCost = 3 * time.Millisecond
	shards := sharding.New(env, 2, cfg)
	params := core.DefaultParams()
	params.Period = 5 * time.Second
	router := sharding.NewRouter(env, shards, params)

	// One hot key on shard 0, one cold key on shard 1.
	hot, cold := pickKey(shards, 0, "hot"), pickKey(shards, 1, "cold")
	if err := shards.Bootstrap(func(shard int, s *storage.Store) error {
		for _, k := range []string{hot, cold} {
			if shards.ShardFor(k) == shard {
				if err := s.C("kv").Insert(storage.D{"_id": k, "v": 0}); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		panic(err)
	}

	// 100 clients on the hot key, 2 on the cold one.
	for i := 0; i < 100; i++ {
		env.Spawn("hot", func(p sim.Proc) {
			for {
				router.ReadByID(p, "kv", hot)
			}
		})
	}
	for i := 0; i < 2; i++ {
		env.Spawn("cold", func(p sim.Proc) {
			for {
				router.ReadByID(p, "kv", cold)
				p.Sleep(20 * time.Millisecond)
			}
		})
	}

	fmt.Printf("hot key %q -> shard %d, cold key %q -> shard %d\n\n",
		hot, shards.ShardFor(hot), cold, shards.ShardFor(cold))
	fmt.Println("t(s)   shard0-balance%   shard1-balance%")
	for t := 10 * time.Second; t <= 90*time.Second; t += 10 * time.Second {
		env.Run(t)
		fr := router.Fractions()
		fmt.Printf("%4.0f   %15d   %15d\n", t.Seconds(), fr[0], fr[1])
	}
	fmt.Println("\nOnly the congested shard shifted its reads to secondaries.")
}

// pickKey finds a key with the given prefix owned by the target shard.
func pickKey(c *sharding.Cluster, shard int, prefix string) string {
	for i := 0; ; i++ {
		k := fmt.Sprintf("%s%d", prefix, i)
		if c.ShardFor(k) == shard {
			return k
		}
	}
}
