// Staleness bound: demonstrates the freshness gate. Heavy TPC-C-style
// write pressure plus long checkpoints push the secondaries' staleness
// past the client's 5-second bound; the Read Balancer snaps the
// Balance Fraction to 0 until they catch up, and the S workload
// verifies the staleness clients actually observed stayed bounded.
//
//	go run ./examples/stalenessbound
package main

import (
	"fmt"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/core"
	"decongestant/internal/driver"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
	"decongestant/internal/workload/sworkload"
)

func main() {
	env := sim.NewEnv(11)
	defer env.Shutdown()

	cfg := cluster.DefaultConfig()
	// Aggressive checkpoints so replication stalls visibly.
	cfg.CheckpointInterval = 30 * time.Second
	cfg.CheckpointMinDuration = 8 * time.Second
	cfg.CheckpointPerMB = 0
	cfg.CheckpointMaxDuration = 8 * time.Second
	rs := cluster.New(env, cfg)

	params := core.DefaultParams()
	params.StaleBound = 5 // seconds
	sys := core.NewSystem(env, driver.WrapCluster(rs), params)

	// The S workload probes staleness through the same gate the
	// application's reads use.
	bal := sys.Balancer
	sw := sworkload.New(env, sys.Client, sworkload.Options{
		ProbeSecondary: func() bool { return bal.Fraction() > 0 },
	})
	sw.Start()

	// Write pressure + a read mix through the router.
	for i := 0; i < 8; i++ {
		env.Spawn("writer", func(p sim.Proc) {
			for j := 0; ; j++ {
				sys.Router.Write(p, func(tx cluster.WriteTxn) (any, error) {
					return nil, tx.Set("load", fmt.Sprintf("k%d", j%100), storage.D{"v": j})
				})
				p.Sleep(2 * time.Millisecond)
			}
		})
	}
	for i := 0; i < 40; i++ {
		env.Spawn("reader", func(p sim.Proc) {
			for {
				sys.Router.Read(p, func(v cluster.ReadView) (any, error) {
					v.FindByID("load", "k1")
					return nil, nil
				})
			}
		})
	}

	fmt.Println("t(s)  estimate(s)  gated  balance%")
	for t := 5 * time.Second; t <= 120*time.Second; t += 5 * time.Second {
		env.Run(t)
		fmt.Printf("%4.0f  %11d  %5v  %7d%%\n",
			t.Seconds(), sys.Balancer.MaxStaleness(), sys.Balancer.Gated(),
			sys.Balancer.FractionPct())
	}

	fmt.Printf("\nclient-observed staleness: P80=%v max=%v over %d probes\n",
		sw.StalenessPercentile(0.80, 0), sw.MaxStaleness(0), len(sw.Samples()))
	fmt.Printf("gate trips: %d (bound %ds)\n", sys.Balancer.Stats().GateTrips, params.StaleBound)
}
