// Wire client: starts a real-time replica set behind a TCP server in
// this same process, then runs the complete Decongestant stack —
// driver, Read Balancer, Router — against it over the network, exactly
// as cmd/replsetd + a remote application would.
//
//	go run ./examples/wireclient
package main

import (
	"fmt"
	"net"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/core"
	"decongestant/internal/sim"
	"decongestant/internal/storage"
	"decongestant/internal/wire"
)

func main() {
	// --- server side (would normally be cmd/replsetd on another host) ---
	serverEnv := sim.NewRealtimeEnv(1)
	defer serverEnv.Shutdown()
	cfg := cluster.DefaultConfig()
	cfg.ReadCost = 200 * time.Microsecond
	cfg.WriteCost = 500 * time.Microsecond
	cfg.ApplyCost = 100 * time.Microsecond
	cfg.ReplIdlePoll = 5 * time.Millisecond
	rs := cluster.New(serverEnv, cfg)
	srv := wire.NewServer(serverEnv, rs, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Printf("replica set listening on %s\n", ln.Addr())

	// --- client side ---
	conn, err := wire.Dial(ln.Addr().String())
	if err != nil {
		panic(err)
	}
	defer conn.Close()
	clientEnv := sim.NewRealtimeEnv(2)
	defer clientEnv.Shutdown()
	params := core.DefaultParams()
	params.Period = 500 * time.Millisecond
	params.StalenessPoll = 200 * time.Millisecond
	params.RTTPing = 200 * time.Millisecond
	sys := core.NewSystem(clientEnv, conn, params)

	p := clientEnv.Adhoc("main")
	// Seed data through the router (writes go to the primary).
	for i := 0; i < 10; i++ {
		if _, _, err := sys.Router.Write(p, func(tx cluster.WriteTxn) (any, error) {
			return nil, tx.Insert("items", storage.D{
				"_id": fmt.Sprintf("item%d", i), "n": i, "name": fmt.Sprintf("thing-%d", i),
			})
		}); err != nil {
			panic(err)
		}
	}
	time.Sleep(300 * time.Millisecond) // let replication deliver

	// Routed reads: the balancer starts at 10% secondary.
	hits := 0
	for i := 0; i < 100; i++ {
		res, pref, lat, err := sys.Router.Read(p, func(v cluster.ReadView) (any, error) {
			d, ok := v.FindByID("items", fmt.Sprintf("item%d", i%10))
			if !ok {
				return nil, nil
			}
			return d.Str("name"), nil
		})
		if err != nil {
			panic(err)
		}
		if res != nil {
			hits++
		}
		if i < 5 {
			fmt.Printf("read %d -> %v via %-9s in %v\n", i, res, pref, lat.Round(time.Microsecond))
		}
	}
	prim, sec := sys.Router.Counts(false)
	fmt.Printf("\n100 reads over TCP: %d hits, %d primary / %d secondary, balance=%d%%\n",
		hits, prim, sec, sys.Balancer.FractionPct())

	// A filtered query on a secondary.
	res, err := conn.ExecRead(p, rs.SecondaryIDs()[0], func(v cluster.ReadView) (any, error) {
		return len(v.Find("items", storage.Filter{"n": storage.Gte(5)}, 0)), nil
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("secondary filtered query: %d items with n >= 5\n", res)
}
