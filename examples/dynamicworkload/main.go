// Dynamic workload: a condensed Figure-2-style run. YCSB-A with 180
// clients switches to YCSB-B at t=120s; the output shows read
// throughput, P80 latency and the measured share of secondary reads
// adapting across the switch — compared against the two hard-coded
// baselines.
//
//	go run ./examples/dynamicworkload
package main

import (
	"fmt"
	"time"

	"decongestant/internal/cluster"
	"decongestant/internal/core"
	"decongestant/internal/driver"
	"decongestant/internal/sim"
	"decongestant/internal/workload"
	"decongestant/internal/workload/ycsb"
)

func runSystem(name string, makeExec func(env *sim.VirtualEnv, rs *cluster.ReplicaSet) workload.Executor) {
	env := sim.NewEnv(7)
	defer env.Shutdown()
	cfg := cluster.DefaultConfig()
	cfg.CPUSlots = 24
	cfg.ReadCost = 3 * time.Millisecond
	cfg.WriteCost = 7 * time.Millisecond
	cfg.ApplyCost = 500 * time.Microsecond
	rs := cluster.New(env, cfg)
	specA := ycsb.WorkloadA()
	specA.RecordCount = 5000
	if err := ycsb.Load(rs, specA, 7); err != nil {
		panic(err)
	}
	exec := makeExec(env, rs)

	type window struct {
		reads, secondary int
		lat              time.Duration
	}
	var w window
	obs := observerFunc(func(at time.Duration, pref driver.ReadPref, lat time.Duration, kind string) {
		w.reads++
		w.lat += lat
		if pref == driver.Secondary {
			w.secondary++
		}
	})
	pool := ycsb.NewPool(env, exec, obs, specA)
	pool.SetClients(180)

	fmt.Printf("\n--- %s ---\n", name)
	fmt.Println("t(s)   reads/s   mean-lat(ms)   secondary%")
	for t := 20 * time.Second; t <= 240*time.Second; t += 20 * time.Second {
		if t == 140*time.Second {
			pool.SetSpec(ycsb.WorkloadB())
			fmt.Println("      >>> workload switches YCSB-A -> YCSB-B <<<")
		}
		w = window{}
		env.Run(t)
		mean := time.Duration(0)
		share := 0.0
		if w.reads > 0 {
			mean = w.lat / time.Duration(w.reads)
			share = 100 * float64(w.secondary) / float64(w.reads)
		}
		fmt.Printf("%4.0f  %8.0f  %13.2f  %10.1f\n",
			t.Seconds(), float64(w.reads)/20,
			float64(mean)/float64(time.Millisecond), share)
	}
}

type observerFunc func(at time.Duration, pref driver.ReadPref, lat time.Duration, kind string)

func (f observerFunc) ObserveRead(at time.Duration, pref driver.ReadPref, lat time.Duration, kind string) {
	f(at, pref, lat, kind)
}
func (f observerFunc) ObserveWrite(time.Duration, time.Duration, string) {}

func main() {
	runSystem("hard-coded Primary", func(env *sim.VirtualEnv, rs *cluster.ReplicaSet) workload.Executor {
		return workload.FixedPref{Client: driver.NewClient(env, driver.WrapCluster(rs)), Pref: driver.Primary}
	})
	runSystem("hard-coded Secondary", func(env *sim.VirtualEnv, rs *cluster.ReplicaSet) workload.Executor {
		return workload.FixedPref{Client: driver.NewClient(env, driver.WrapCluster(rs)), Pref: driver.Secondary}
	})
	runSystem("Decongestant", func(env *sim.VirtualEnv, rs *cluster.ReplicaSet) workload.Executor {
		sys := core.NewSystem(env, driver.WrapCluster(rs), core.DefaultParams())
		return workload.RouterExec{Router: sys.Router}
	})
}
